//! Simulation configuration.

use besync_data::Metric;
use besync_sim::rng::{self, streams};
use besync_sim::Wave;
use rand::Rng;

use crate::cache::FeedbackTargeting;
use crate::fault::FaultProfile;
use crate::priority::{PolicyKind, RateEstimator};
use crate::threshold::{expected_feedback_period, ThresholdParams};

/// Configuration of one simulation run (both the pragmatic cooperative
/// system and the idealized scheduler consume this).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Divergence metric being minimized.
    pub metric: Metric,
    /// Refresh priority policy at the sources.
    pub policy: PolicyKind,
    /// How sources estimate Poisson rates for closed-form policies.
    pub estimator: RateEstimator,
    /// Average cache-side bandwidth `B_C` (messages/second).
    pub cache_bandwidth_mean: f64,
    /// Average per-source bandwidth `B_S` (messages/second).
    pub source_bandwidth_mean: f64,
    /// The paper's `m_B`: peak relative bandwidth change rate (0 ⇒
    /// constant bandwidth; both links fluctuate when nonzero).
    pub bandwidth_change_rate: f64,
    /// Threshold increase factor α (paper's best: 1.1).
    pub alpha: f64,
    /// Threshold decrease factor ω (paper's best: 10).
    pub omega: f64,
    /// Initial local threshold at every source.
    pub initial_threshold: f64,
    /// Feedback targeting policy at the cache.
    pub feedback_targeting: FeedbackTargeting,
    /// Simulation tick (seconds); the paper accounts bandwidth per second.
    pub tick: f64,
    /// Warm-up duration excluded from measurement (seconds).
    pub warmup: f64,
    /// Measured duration after warm-up (seconds).
    pub measure: f64,
    /// Seed for simulation-side randomness (phases, tie-breaking); the
    /// workload carries its own seed.
    pub sim_seed: u64,
    /// §9: per-object maximum divergence rates, required by
    /// [`PolicyKind::Bound`].
    pub bound_rates: Option<Vec<f64>>,
    /// Simulated-world fault profile. `None` (the default) skips the
    /// fault machinery entirely: that path is bit-identical to the
    /// pre-fault tree and is what every golden pins.
    pub fault: Option<FaultProfile>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            metric: Metric::Staleness,
            policy: PolicyKind::Area,
            estimator: RateEstimator::LongRun,
            cache_bandwidth_mean: 100.0,
            source_bandwidth_mean: 10.0,
            bandwidth_change_rate: 0.0,
            alpha: 1.1,
            omega: 10.0,
            initial_threshold: 1.0,
            feedback_targeting: FeedbackTargeting::HighestThreshold,
            tick: 1.0,
            warmup: 100.0,
            measure: 500.0,
            sim_seed: 0,
            bound_rates: None,
            fault: None,
        }
    }
}

impl SystemConfig {
    /// End of the run: warm-up plus measurement window.
    pub fn horizon(&self) -> f64 {
        self.warmup + self.measure
    }

    /// Threshold parameters for `sources` cooperating sources.
    ///
    /// The expected feedback period is `m / B̄_C` (§5) but never less than
    /// one tick: the cache's surplus check runs per tick, so feedback
    /// cannot arrive more often than that, and a sub-tick expectation
    /// would trip the β flood brake on every perfectly healthy refresh.
    pub fn threshold_params(&self, sources: u32) -> ThresholdParams {
        ThresholdParams {
            alpha: self.alpha,
            omega: self.omega,
            initial: self.initial_threshold,
            expected_feedback_period: expected_feedback_period(sources, self.cache_bandwidth_mean)
                .max(self.tick),
        }
    }

    /// The cache-side bandwidth wave (random phase derived from the seed).
    pub fn cache_wave(&self) -> Wave {
        let mut r = rng::stream_rng2(self.sim_seed, streams::PHASES, u64::MAX);
        let phase = r.gen_range(0.0..std::f64::consts::TAU);
        Wave::fluctuating(self.cache_bandwidth_mean, self.bandwidth_change_rate, phase)
    }

    /// The bandwidth wave of source `j` (independent random phase so
    /// source links don't fluctuate in lock-step).
    pub fn source_wave(&self, source: u32) -> Wave {
        let mut r = rng::stream_rng2(self.sim_seed, streams::PHASES, source as u64);
        let phase = r.gen_range(0.0..std::f64::consts::TAU);
        Wave::fluctuating(
            self.source_bandwidth_mean,
            self.bandwidth_change_rate,
            phase,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use besync_sim::signal::Signal;
    use besync_sim::SimTime;

    #[test]
    fn default_matches_paper_recommendations() {
        let c = SystemConfig::default();
        assert_eq!(c.alpha, 1.1);
        assert_eq!(c.omega, 10.0);
        assert_eq!(c.tick, 1.0);
        assert_eq!(c.horizon(), 600.0);
    }

    #[test]
    fn constant_bandwidth_when_mb_zero() {
        let c = SystemConfig::default();
        assert_eq!(c.cache_wave(), Wave::Constant(100.0));
        assert_eq!(c.source_wave(3), Wave::Constant(10.0));
    }

    #[test]
    fn fluctuating_bandwidth_has_distinct_phases() {
        let c = SystemConfig {
            bandwidth_change_rate: 0.25,
            ..SystemConfig::default()
        };
        let w0 = c.source_wave(0);
        let w1 = c.source_wave(1);
        let t = SimTime::new(3.0);
        assert!((w0.value(t) - w1.value(t)).abs() > 1e-9);
        // Same seed reproduces the same phases.
        assert_eq!(w0, c.source_wave(0));
    }

    #[test]
    fn threshold_params_compute_feedback_period() {
        let c = SystemConfig::default();
        let p = c.threshold_params(200);
        assert!((p.expected_feedback_period - 2.0).abs() < 1e-12);
        // Sub-tick periods are floored at the tick.
        let p1 = c.threshold_params(10);
        assert_eq!(p1.expected_feedback_period, 1.0);
        assert_eq!(p.alpha, 1.1);
    }
}

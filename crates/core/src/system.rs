//! The pragmatic cooperative synchronization system (paper §5).
//!
//! [`CoopSystem`] wires a [`WorkloadSpec`] into the full protocol:
//!
//! * **Sources** watch their objects, keep them "in priority order", and
//!   whenever source-side bandwidth permits, send the highest-priority
//!   object *if* its priority exceeds the local threshold `Tⱼ`; each send
//!   multiplies `Tⱼ` by `α·β` and piggybacks the new threshold.
//! * **The shared cache-side link** carries refresh messages; messages
//!   beyond its fluctuating capacity queue up (the flooding hazard).
//! * **The cache** applies delivered snapshots and, when it sees surplus
//!   bandwidth after serving the queue, spends the surplus on positive
//!   feedback messages to the highest-threshold sources, each dividing
//!   that source's threshold by ω (unless the source is saturated).
//!
//! Ground-truth divergence is accounted exactly by a
//! [`besync_data::TruthTable`]; note the asymmetry the paper exploits:
//! sources reason optimistically from their last *sent* snapshot, while
//! the truth reflects what actually reached the cache and when.

use std::collections::VecDeque;

use besync_data::ids::ObjectLayout;
use besync_data::{ObjectId, SourceId, TruthTable};
use besync_net::Link;
use besync_sim::stats::RunningStats;
use besync_sim::{CalendarQueue, SimTime};
use besync_workloads::{Updater, WorkloadSpec};
use rand::rngs::SmallRng;

use crate::cache::CacheRuntime;
use crate::config::SystemConfig;
use crate::fault::{
    Episode, EpisodeSchedule, FaultProfile, FaultSummary, LossLane, RecoveryPolicy,
};
use crate::report::RunReport;
use crate::source::{Snapshot, SourceRuntime};

/// A refresh message in flight from a source to the cache.
#[derive(Debug, Clone, Copy)]
pub struct RefreshMsg {
    /// The object being refreshed.
    pub obj: ObjectId,
    /// Originating source.
    pub src: SourceId,
    /// The (send-time) snapshot of the object.
    pub snapshot: Snapshot,
    /// The source's local threshold, piggybacked (§5).
    pub threshold: f64,
}

/// Runtime state of the simulated-world fault layer. Present only when
/// the config carries a [`FaultProfile`]; with `None` the fault-free
/// path takes no extra queue slots and draws no fault randomness, so it
/// stays bit-identical to the pre-fault tree.
struct FaultLayer {
    profile: FaultProfile,
    /// Counter-hashed per-delivery loss decisions.
    loss: LossLane,
    /// Cache-link outage windows (lazily generated).
    outages: EpisodeSchedule,
    /// The window scheduled into `outage_slot`; its start has fired iff
    /// `outage_active`.
    outage: Option<Episode>,
    outage_active: bool,
    /// Divergence-integral probe taken at outage start.
    outage_epoch_start: f64,
    /// Queue slot carrying outage start/end transitions
    /// (`total_objects + 2`).
    outage_slot: u32,
    /// First per-source crash slot (`total_objects + 3 + sid`).
    crash_slot_base: u32,
    crash: Vec<CrashState>,
    /// Lost refreshes awaiting link-layer retransmission. The deadline
    /// is constant, so push order is due order.
    retries: VecDeque<(SimTime, RefreshMsg)>,
    /// Cumulative refreshes delivered per source — the ack counters the
    /// cache piggybacks on §5 feedback when the profile is fault-aware.
    delivered_per_source: Vec<u64>,
}

/// Crash/restart state of one source.
struct CrashState {
    sched: EpisodeSchedule,
    /// The episode scheduled into this source's crash slot; its start
    /// has fired iff `down`.
    episode: Option<Episode>,
    down: bool,
    /// Divergence-integral probe of this source's objects at crash time.
    epoch_start: f64,
}

/// The full cooperative system of the paper, ready to run.
///
/// Events live in a [`CalendarQueue`]: object `i`'s (single) pending
/// update occupies slot `i`, and two extra slots carry the per-second tick
/// and the end-of-warm-up marker. The bucket width is sized from the
/// workload's aggregate update rate, so the dominant update→next-update
/// pattern costs an O(1) bucket push plus a short scan of one hot bucket —
/// no O(log n) heap sift, no pointer-chasing through cold cache lines. The
/// queue orders by `(time, schedule seq)` exactly like the generic
/// [`besync_sim::EventQueue`], so trajectories are bit-identical to the
/// heap-based representation.
pub struct CoopSystem {
    cfg: SystemConfig,
    layout: ObjectLayout,
    truth: TruthTable,
    sources: Vec<SourceRuntime>,
    cache_link: Link<RefreshMsg>,
    cache: CacheRuntime,
    queue: CalendarQueue,
    /// Slot id of the per-second tick event (`total_objects`).
    tick_slot: u32,
    /// Slot id of the end-of-warm-up event (`total_objects + 1`).
    warmup_slot: u32,
    /// Source owning each object (precomputed: the per-event division in
    /// `ObjectLayout::source_of` is measurable at millions of events/sec).
    obj_source: Vec<u32>,
    /// Each object's updater and its RNG stream, kept adjacent: `fire`
    /// touches both on every event, so one cache line beats two.
    updaters: Vec<(Updater, SmallRng)>,
    scratch: Vec<RefreshMsg>,
    /// Reusable feedback target buffer (zero steady-state allocation).
    feedback_targets: Vec<u32>,
    refreshes_delivered: u64,
    updates_processed: u64,
    /// Refreshes delivered since the last tick (feeds the utilization
    /// estimate below).
    deliveries_this_tick: u64,
    /// EWMA of refresh deliveries per tick: the cache's estimate of the
    /// bandwidth refreshes will need, reserved before spending "excess"
    /// on feedback. The paper's cache "continually monitors cache-side
    /// bandwidth utilization" (§5); reserving the running utilization is
    /// what keeps feedback from stealing bandwidth that refreshes arriving
    /// later in the tick would have used.
    delivery_rate_ewma: f64,
    /// The simulated-world fault layer, `None` on the fault-free path.
    faults: Option<FaultLayer>,
    fault_stats: FaultSummary,
}

impl CoopSystem {
    /// Builds the system from a configuration and workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload spec is internally inconsistent or if
    /// `bound_rates` is required/mismatched (see
    /// [`crate::priority::PolicyKind::Bound`]).
    pub fn new(cfg: SystemConfig, mut spec: WorkloadSpec) -> Self {
        spec.validate().expect("invalid workload spec");
        let layout = spec.layout;
        let m = layout.sources();
        let truth = TruthTable::new(cfg.metric, &spec.initial_values, spec.weights.clone());
        let tparams = cfg.threshold_params(m);

        // Bucket width ≈ the mean gap between consecutive events
        // (aggregate update rate plus the once-per-second tick), the
        // occupancy-one sweet spot for a calendar queue. Summed before
        // the rate pool is consumed below.
        let event_rate = spec.rates.iter().sum::<f64>() + 1.0 / cfg.tick.max(1e-6);

        // The sources take ownership of the spec's weight/rate pools
        // rather than copying slices out of them: at the 1M-object
        // `mega` scale the extra transient copy of each pool is tens of
        // megabytes of peak RSS. Splitting back-to-front makes each
        // `split_off` O(objects-per-source), and construction order
        // doesn't observe anything time-dependent, so reversing at the
        // end leaves every source bit-identical to the slice-copy build.
        let mut weight_pool = std::mem::take(&mut spec.weights);
        let mut rate_pool = std::mem::take(&mut spec.rates);
        let mut sources = Vec::with_capacity(m as usize);
        for sid in (0..m).rev() {
            let base = sid * layout.objects_per_source();
            let lo = base as usize;
            let hi = lo + layout.objects_per_source() as usize;
            let bound_rates = cfg.bound_rates.as_ref().map(|all| all[lo..hi].to_vec());
            sources.push(SourceRuntime::new(
                SourceId(sid),
                base,
                &spec.initial_values[lo..hi],
                weight_pool.split_off(lo),
                rate_pool.split_off(lo),
                Link::new(cfg.source_wave(sid)),
                tparams,
                cfg.metric,
                cfg.policy,
                cfg.estimator,
                bound_rates,
                SimTime::ZERO,
            ));
        }
        sources.reverse();

        let cache_link = Link::new(cfg.cache_wave());
        let cache = CacheRuntime::new(
            m,
            cfg.initial_threshold,
            cfg.feedback_targeting,
            cfg.sim_seed,
        );

        let rngs = spec.object_rngs();
        let total = spec.total_objects();
        let tick_slot = total as u32;
        let warmup_slot = total as u32 + 1;
        // A fault profile needs exact-time transitions: one slot for the
        // shared-link outage window plus one crash slot per source. With
        // no profile the queue is constructed exactly as before.
        let faults = cfg.fault.map(|profile| {
            profile.validate().expect("invalid fault profile");
            let crash = (0..m)
                .map(|sid| {
                    let mut sched = EpisodeSchedule::crashes(cfg.sim_seed, sid, &profile);
                    let episode = sched.next_episode();
                    CrashState {
                        sched,
                        episode,
                        down: false,
                        epoch_start: 0.0,
                    }
                })
                .collect();
            let mut outages = EpisodeSchedule::outages(cfg.sim_seed, &profile);
            let outage = outages.next_episode();
            FaultLayer {
                loss: LossLane::new(cfg.sim_seed, 0, profile.loss_prob),
                profile,
                outages,
                outage,
                outage_active: false,
                outage_epoch_start: 0.0,
                outage_slot: total as u32 + 2,
                crash_slot_base: total as u32 + 3,
                crash,
                retries: VecDeque::new(),
                delivered_per_source: vec![0; m as usize],
            }
        });
        // Fault-aware scheduling: each source prices its quotes by an
        // estimated delivery probability, fed by the cache's acks. The
        // estimator starts at 1.0, so priorities are unchanged until the
        // first ack arrives; without `aware` no estimator exists and the
        // priority path is bit-identical.
        if let Some(fl) = &faults {
            if fl.profile.aware {
                for s in &mut sources {
                    s.enable_delivery_estimator(cfg.sim_seed);
                }
            }
        }
        let slots = match &faults {
            None => total + 2,
            Some(_) => total + 3 + m as usize,
        };
        let mut queue = CalendarQueue::new(slots, 1.0 / event_rate);
        // Scheduling order matters: the queue breaks same-instant ties by
        // schedule order, and this order (warm-up, tick, objects) is the
        // one the golden trajectories were recorded under.
        queue.schedule(warmup_slot, SimTime::new(cfg.warmup));
        queue.schedule(tick_slot, SimTime::new(cfg.tick));
        let mut updaters: Vec<(Updater, SmallRng)> = spec.updaters.into_iter().zip(rngs).collect();
        for obj in layout.all_objects() {
            let idx = obj.index();
            let (updater, rng) = &mut updaters[idx];
            if let Some(t0) = updater.first_time(SimTime::ZERO, rng) {
                queue.schedule(obj.0, t0);
            }
        }
        let obj_source = layout
            .all_objects()
            .map(|o| layout.source_of(o).0)
            .collect();
        if let Some(fl) = &faults {
            if let Some(e) = fl.outage {
                queue.schedule(fl.outage_slot, SimTime::new(e.start));
            }
            for (sid, cs) in fl.crash.iter().enumerate() {
                if let Some(e) = cs.episode {
                    queue.schedule(fl.crash_slot_base + sid as u32, SimTime::new(e.start));
                }
            }
        }

        CoopSystem {
            cfg,
            layout,
            truth,
            sources,
            cache_link,
            cache,
            queue,
            tick_slot,
            warmup_slot,
            obj_source,
            updaters,
            scratch: Vec::new(),
            feedback_targets: Vec::new(),
            refreshes_delivered: 0,
            updates_processed: 0,
            deliveries_this_tick: 0,
            delivery_rate_ewma: 0.0,
            faults,
            fault_stats: FaultSummary::default(),
        }
    }

    /// Runs to the configured horizon and reports.
    pub fn run(mut self) -> RunReport {
        let horizon = SimTime::new(self.cfg.horizon());
        self.run_until(horizon);
        self.report(horizon)
    }

    /// Processes every event at or before `t` (the simulation can then be
    /// inspected mid-run and resumed — used by tests and benchmarks).
    pub fn run_until(&mut self, t: SimTime) {
        while let Some((now, slot)) = self.queue.pop_at_or_before(t) {
            if slot < self.tick_slot {
                // An object update — by far the dominant event.
                if let Some(next) = self.on_update(now, ObjectId(slot)) {
                    self.queue.schedule(slot, next);
                }
            } else if slot == self.tick_slot {
                self.on_tick(now);
            } else if slot == self.warmup_slot {
                self.truth.begin_measurement(now);
            } else {
                // Fault transitions only exist when a profile is set.
                self.on_fault_event(now, slot);
            }
        }
    }

    /// Finishes a stepped run: accounts divergence up to the configured
    /// horizon and reports, exactly as [`CoopSystem::run`] would.
    pub fn into_report(self) -> RunReport {
        let horizon = SimTime::new(self.cfg.horizon());
        self.report(horizon)
    }

    /// The configured end of simulated time.
    pub fn horizon(&self) -> SimTime {
        SimTime::new(self.cfg.horizon())
    }

    /// Read access to the per-source runtimes (tests, diagnostics).
    pub fn sources(&self) -> &[SourceRuntime] {
        &self.sources
    }

    /// How objects are laid out over sources.
    pub fn layout(&self) -> ObjectLayout {
        self.layout
    }

    /// The ground truth (for inspection mid-construction or in tests).
    pub fn truth(&self) -> &TruthTable {
        &self.truth
    }

    /// Handles one object update and returns the time of that object's
    /// next update, if any. Does NOT touch the event queue — the caller
    /// reschedules the slot in place.
    fn on_update(&mut self, now: SimTime, obj: ObjectId) -> Option<SimTime> {
        self.updates_processed += 1;
        let idx = obj.index();
        let sid = self.obj_source[idx] as usize;
        let source = &mut self.sources[sid];
        let local = source.local(obj);
        let current = source.state(local).value;
        let (updater, rng) = &mut self.updaters[idx];
        let (value, next) = updater.fire(now, current, rng);
        let weight = self.truth.source_update(now, obj, value);
        if self.source_down(sid) {
            // The data changed, but the sync agent is down: track the
            // state silently, quote nothing, send nothing. Divergence
            // accrues against the live truth.
            self.sources[sid].record_update_unquoted(now, local, value);
            self.fault_stats.missed_updates += 1;
            return next;
        }
        let source = &mut self.sources[sid];
        source.record_update_weighted(now, local, value, weight);
        // §3.4: "sources have direct knowledge of update times and decide
        // whether to refresh immediately after each update".
        self.attempt_sends(now, sid);
        next
    }

    /// Whether source `sid`'s sync agent is currently crashed.
    #[inline]
    fn source_down(&self, sid: usize) -> bool {
        match &self.faults {
            Some(fl) => fl.crash[sid].down,
            None => false,
        }
    }

    fn on_tick(&mut self, now: SimTime) {
        // 1) Deliver queued refreshes as capacity allows.
        let mut msgs = std::mem::take(&mut self.scratch);
        msgs.clear();
        self.cache_link.service(now, &mut msgs);
        for msg in &msgs {
            self.deliver_faulty(now, *msg);
        }
        self.scratch = msgs;

        // 1b) Lost refreshes whose retransmit deadline has passed
        //     re-enter the shared link like any other traffic.
        self.process_retries(now);

        // 2) Time-dependent policies (Bound) need fresh quotes each tick.
        if !self.cfg.policy.piecewise_constant() {
            for sid in 0..self.sources.len() {
                if self.source_down(sid) {
                    continue;
                }
                self.sources[sid].requote_all(now);
            }
        }

        // 3) Each source ships what its credit and threshold allow.
        for sid in 0..self.sources.len() {
            self.attempt_sends(now, sid);
        }

        // 4) Update the utilization estimate, then spend genuine surplus
        //    on positive feedback (§5), aimed at the highest thresholds.
        self.delivery_rate_ewma =
            0.8 * self.delivery_rate_ewma + 0.2 * self.deliveries_this_tick as f64;
        self.deliveries_this_tick = 0;
        self.send_feedback(now);

        self.queue.schedule(self.tick_slot, now + self.cfg.tick);
    }

    /// Sends from source `sid` while (a) an over-threshold candidate
    /// exists and (b) source-side credit remains. Updates the saturation
    /// flag per §5 footnote 3.
    fn attempt_sends(&mut self, now: SimTime, sid: usize) {
        if self.source_down(sid) {
            return;
        }
        loop {
            let (priority, local) = match self.sources[sid].candidate() {
                Some(c) => c,
                None => {
                    self.sources[sid].saturated = false;
                    return;
                }
            };
            if priority <= self.sources[sid].threshold.value() {
                self.sources[sid].saturated = false;
                return;
            }
            if !self.sources[sid].uplink.try_consume(now, 1.0) {
                // Over-threshold work pending but no source bandwidth.
                self.sources[sid].saturated = true;
                return;
            }
            let snapshot = self.sources[sid].mark_sent(now, local);
            let msg = RefreshMsg {
                obj: self.sources[sid].global(local),
                src: self.sources[sid].id,
                snapshot,
                threshold: self.sources[sid].threshold.value(),
            };
            if let Some(delivered) = self.cache_link.offer(now, msg) {
                self.deliver_faulty(now, delivered);
            }
        }
    }

    fn send_feedback(&mut self, now: SimTime) {
        if self.cache_link.has_backlog() {
            return;
        }
        // Reserve the bandwidth refreshes have been using; only what's
        // left beyond that is surplus. Without the reserve, feedback sent
        // at the tick boundary starves refreshes that arrive mid-tick.
        let surplus = (self.cache_link.credit(now) - self.delivery_rate_ewma).floor();
        if surplus < 1.0 {
            return;
        }
        let k = (surplus as usize).min(self.sources.len());
        if k == 0 {
            return;
        }
        // The target list is built into a buffer owned by this struct (not
        // the cache), so we can iterate it while mutating cache state; it
        // is reused across ticks, keeping the steady state allocation-free.
        let mut targets = std::mem::take(&mut self.feedback_targets);
        self.cache.select_targets_into(k, &mut targets);
        for &sid in &targets {
            // Refreshes triggered by earlier feedback may have refilled
            // the queue; surplus is gone then.
            if !self.cache_link.try_consume(now, 1.0) {
                break;
            }
            self.cache.feedback_sent += 1;
            let sid = sid as usize;
            if self.source_down(sid) {
                // The message spent cache credit, but the crashed sync
                // agent never receives it: no threshold effect.
                continue;
            }
            let saturated = self.sources[sid].saturated;
            self.sources[sid].threshold.on_feedback(now, saturated);
            // Fault-aware runs piggyback the cache's cumulative delivery
            // count for this source on the feedback message; the source
            // folds it into its loss-rate estimator. Feedback is only
            // sent when the link queue is empty, so the ack reflects a
            // settled window rather than in-flight traffic.
            if let Some(fl) = &self.faults {
                if fl.profile.aware {
                    let acked = fl.delivered_per_source[sid];
                    self.sources[sid].on_delivery_ack(acked);
                }
            }
            // The lowered threshold may make objects eligible right away.
            self.attempt_sends(now, sid);
        }
        self.feedback_targets = targets;
    }

    /// Delivery with the loss lane in front: each transmitted refresh is
    /// independently lost with the profile's probability. The source
    /// already spent uplink credit and reset its view in `mark_sent`, so
    /// a loss silently leaves the cache stale — under the retransmit
    /// policy the message is queued for a deadline-delayed resend.
    fn deliver_faulty(&mut self, now: SimTime, msg: RefreshMsg) {
        if let Some(fl) = &mut self.faults {
            if fl.profile.loss_prob > 0.0 && fl.loss.draw() {
                self.fault_stats.lost_refreshes += 1;
                if let RecoveryPolicy::Retransmit { deadline } = fl.profile.recovery {
                    fl.retries.push_back((now + deadline, msg));
                }
                return;
            }
        }
        self.deliver(now, msg);
    }

    /// Re-offers every lost refresh whose retransmit deadline has
    /// passed. Retransmissions pay for cache-link bandwidth like any
    /// refresh and can themselves be lost again. Retries superseded by
    /// a newer snapshot are purged before they burn link credit, and
    /// during an outage window retries wait like any other traffic
    /// (they were already dropped at outage start under `drops_queue`).
    fn process_retries(&mut self, now: SimTime) {
        if self.cache_link.is_suspended() {
            return;
        }
        loop {
            let msg = {
                let Some(fl) = self.faults.as_mut() else {
                    return;
                };
                match fl.retries.front() {
                    Some((due, _)) if *due <= now => fl.retries.pop_front().expect("front ok").1,
                    _ => return,
                }
            };
            if self.retry_superseded(&msg) {
                self.fault_stats.superseded_retries += 1;
                continue;
            }
            self.fault_stats.retransmits += 1;
            if let Some(delivered) = self.cache_link.offer(now, msg) {
                self.deliver_faulty(now, delivered);
            }
        }
    }

    /// Whether a queued retry is no longer worth sending. Always purged:
    /// the cache already holds a newer snapshot (a later send got
    /// through), so delivery would be dropped by the recency guard
    /// anyway. Fault-aware runs additionally purge retries whose source
    /// has updated the object since the lost send — the retried snapshot
    /// no longer matches the source, so under the divergence accounting
    /// it buys nothing (and the newer state will be quoted on its own).
    fn retry_superseded(&self, msg: &RefreshMsg) -> bool {
        if msg.snapshot.updates <= self.truth.truth(msg.obj).cached_updates {
            return true;
        }
        let aware = self.faults.as_ref().is_some_and(|fl| fl.profile.aware);
        if !aware {
            return false;
        }
        let source = &self.sources[msg.src.index()];
        let local = source.local(msg.obj);
        u64::from(source.state(local).updates) > msg.snapshot.updates
    }

    /// Handles an outage or crash slot transition.
    fn on_fault_event(&mut self, now: SimTime, slot: u32) {
        let (outage_slot, crash_slot_base) = {
            let fl = self
                .faults
                .as_ref()
                .expect("fault slot without fault layer");
            (fl.outage_slot, fl.crash_slot_base)
        };
        if slot == outage_slot {
            self.on_outage_transition(now);
        } else {
            self.on_crash_transition(now, (slot - crash_slot_base) as usize);
        }
    }

    /// Outage start: bank credit, suspend accrual, apply the queue
    /// policy. Outage end: resume and attribute the epoch's divergence.
    fn on_outage_transition(&mut self, now: SimTime) {
        let horizon = self.cfg.horizon();
        let objects = self.truth.len();
        let fl = self.faults.as_mut().expect("outage without fault layer");
        if !fl.outage_active {
            let e = fl.outage.expect("outage start fired without a window");
            fl.outage_active = true;
            self.fault_stats.outages += 1;
            self.fault_stats.outage_seconds += e.end.min(horizon) - e.start;
            self.cache_link.suspend(now);
            if fl.profile.outage_drops_queue {
                self.fault_stats.dropped_in_outage += self.cache_link.drop_queue() as u64;
                // The drop policy applies to the retry side-queue too —
                // retries must not ride out an outage that drops fresh
                // traffic.
                self.fault_stats.dropped_in_outage += fl.retries.len() as u64;
                fl.retries.clear();
            }
            fl.outage_epoch_start = self.truth.divergence_integral_range(now, 0, objects);
            self.queue.schedule(fl.outage_slot, SimTime::new(e.end));
        } else {
            fl.outage_active = false;
            self.cache_link.resume(now);
            self.fault_stats.epoch_divergence +=
                self.truth.divergence_integral_range(now, 0, objects) - fl.outage_epoch_start;
            fl.outage = fl.outages.next_episode();
            if let Some(e) = fl.outage {
                self.queue.schedule(fl.outage_slot, SimTime::new(e.start));
            }
            if fl.profile.aware {
                // Fault-aware resume: merge due retries into the held
                // backlog, then replay the §8 economics over the whole
                // queue — highest weighted divergence first — instead of
                // FIFO-draining a backlog whose order reflects pre-outage
                // priorities.
                self.process_retries(now);
                self.reorder_held_queue(now);
            }
        }
    }

    /// Reorders the cache-link backlog by the divergence a delivery
    /// would resolve (`weight × divergence(snapshot, cached)`), the
    /// cache-side analogue of the §8 priority a send was quoted under.
    fn reorder_held_queue(&mut self, now: SimTime) {
        let truth = &self.truth;
        let metric = self.cfg.metric;
        self.cache_link.reorder_queue_by(|msg: &RefreshMsg| {
            let t = truth.truth(msg.obj);
            let gain = metric.divergence(
                msg.snapshot.value,
                msg.snapshot.updates,
                t.cached_value,
                t.cached_updates,
            );
            truth.weight_at(msg.obj, now) * gain
        });
    }

    /// Crash start: the sync agent loses its heap and goes silent.
    /// Restart: attribute the epoch's divergence and run the recovery
    /// policy (resync re-quotes everything and bursts catch-up sends).
    fn on_crash_transition(&mut self, now: SimTime, sid: usize) {
        let horizon = self.cfg.horizon();
        let per_source = self.layout.objects_per_source() as usize;
        let (lo, hi) = (sid * per_source, (sid + 1) * per_source);
        let resync = {
            let fl = self.faults.as_mut().expect("crash without fault layer");
            let slot = fl.crash_slot_base + sid as u32;
            let cs = &mut fl.crash[sid];
            if !cs.down {
                let e = cs.episode.expect("crash start fired without an episode");
                cs.down = true;
                self.fault_stats.crashes += 1;
                self.fault_stats.down_seconds += e.end.min(horizon) - e.start;
                cs.epoch_start = self.truth.divergence_integral_range(now, lo, hi);
                self.sources[sid].saturated = false;
                self.sources[sid].clear_quotes();
                self.queue.schedule(slot, SimTime::new(e.end));
                false
            } else {
                cs.down = false;
                self.fault_stats.epoch_divergence +=
                    self.truth.divergence_integral_range(now, lo, hi) - cs.epoch_start;
                cs.episode = cs.sched.next_episode();
                if let Some(e) = cs.episode {
                    self.queue.schedule(slot, SimTime::new(e.start));
                }
                matches!(fl.profile.recovery, RecoveryPolicy::Resync)
            }
        };
        if resync {
            // Cold-restart bulk resync: re-quote every diverged object
            // and let the catch-up burst compete for bandwidth under
            // the ordinary §8 priority scheme.
            self.sources[sid].requote_all(now);
            self.fault_stats.resync_quotes += self.sources[sid].heap.raw_len() as u64;
            self.attempt_sends(now, sid);
        }
    }

    fn deliver(&mut self, now: SimTime, msg: RefreshMsg) {
        if let Some(fl) = &mut self.faults {
            // Ack accounting: the message transited the link, so it
            // counts as delivered for the source's loss-rate estimator
            // even if the recency guard discards it below.
            fl.delivered_per_source[msg.src.index()] += 1;
        }
        // Recency guard: a retransmitted lost refresh that arrives after
        // a newer refresh for the same object must not overwrite the
        // fresher cached value. On the fault-free path snapshot update
        // counts are strictly increasing per object across sends and the
        // link is FIFO, so this guard can only fire for retransmissions.
        if msg.snapshot.updates <= self.truth.truth(msg.obj).cached_updates {
            self.fault_stats.stale_drops += 1;
            self.refreshes_delivered += 1;
            self.deliveries_this_tick += 1;
            return;
        }
        self.truth
            .apply_refresh(now, msg.obj, msg.snapshot.value, msg.snapshot.updates);
        self.cache.observe_threshold(msg.src, msg.threshold);
        self.refreshes_delivered += 1;
        self.deliveries_this_tick += 1;
    }

    fn report(self, horizon: SimTime) -> RunReport {
        let mut threshold_stats = RunningStats::new();
        let mut refreshes_sent = 0;
        for s in &self.sources {
            threshold_stats.push(s.threshold.value());
            refreshes_sent += s.sends;
        }
        let link_stats = self.cache_link.stats();
        RunReport {
            divergence: self.truth.report(horizon),
            refreshes_sent,
            refreshes_delivered: self.refreshes_delivered,
            feedback_messages: self.cache.feedback_sent,
            polls_sent: 0,
            max_cache_queue: link_stats.max_queue,
            mean_queue_wait: link_stats.total_wait / (link_stats.delivered.max(1) as f64),
            threshold_stats,
            updates_processed: self.updates_processed,
            faults: self.fault_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::PolicyKind;
    use besync_data::Metric;
    use besync_workloads::generators::{random_walk_poisson, PoissonWorkloadOptions};

    fn small_spec(seed: u64) -> WorkloadSpec {
        random_walk_poisson(
            PoissonWorkloadOptions {
                sources: 4,
                objects_per_source: 5,
                rate_range: (0.05, 0.5),
                weight_range: (1.0, 1.0),
                fluctuating_weights: false,
            },
            seed,
        )
    }

    fn quick_cfg() -> SystemConfig {
        SystemConfig {
            metric: Metric::Staleness,
            cache_bandwidth_mean: 10.0,
            source_bandwidth_mean: 5.0,
            warmup: 20.0,
            measure: 100.0,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn runs_and_reports() {
        let report = CoopSystem::new(quick_cfg(), small_spec(1)).run();
        assert!(report.updates_processed > 0);
        assert!(report.refreshes_sent > 0);
        assert!(report.refreshes_delivered <= report.refreshes_sent);
        assert!(report.mean_divergence() >= 0.0);
        assert!(report.mean_divergence() <= 1.0); // staleness is 0/1
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = CoopSystem::new(quick_cfg(), small_spec(7)).run();
        let b = CoopSystem::new(quick_cfg(), small_spec(7)).run();
        assert_eq!(a.mean_divergence(), b.mean_divergence());
        assert_eq!(a.refreshes_sent, b.refreshes_sent);
        assert_eq!(a.feedback_messages, b.feedback_messages);
    }

    #[test]
    fn ample_bandwidth_keeps_divergence_low() {
        let cfg = SystemConfig {
            cache_bandwidth_mean: 1000.0,
            source_bandwidth_mean: 1000.0,
            ..quick_cfg()
        };
        let report = CoopSystem::new(cfg, small_spec(2)).run();
        // With bandwidth far above the update rate and feedback pulling
        // thresholds down, staleness should be small.
        assert!(
            report.mean_divergence() < 0.2,
            "divergence {} too high for ample bandwidth",
            report.mean_divergence()
        );
        assert!(report.feedback_messages > 0);
    }

    #[test]
    fn starved_bandwidth_raises_divergence() {
        let rich = CoopSystem::new(
            SystemConfig {
                cache_bandwidth_mean: 50.0,
                ..quick_cfg()
            },
            small_spec(3),
        )
        .run();
        let poor = CoopSystem::new(
            SystemConfig {
                cache_bandwidth_mean: 0.5,
                ..quick_cfg()
            },
            small_spec(3),
        )
        .run();
        assert!(poor.mean_divergence() > rich.mean_divergence());
    }

    #[test]
    fn no_unbounded_flooding() {
        // Starve the cache massively; the positive-feedback design must
        // keep the queue bounded (thresholds rise in the absence of
        // feedback).
        let cfg = SystemConfig {
            cache_bandwidth_mean: 0.5,
            source_bandwidth_mean: 50.0,
            warmup: 50.0,
            measure: 300.0,
            ..quick_cfg()
        };
        let report = CoopSystem::new(cfg, small_spec(4)).run();
        assert!(
            report.max_cache_queue < 100,
            "cache queue peaked at {}",
            report.max_cache_queue
        );
    }

    #[test]
    fn works_with_all_metrics_and_policies() {
        for metric in Metric::all_three() {
            for policy in [
                PolicyKind::Area,
                PolicyKind::PoissonClosedForm,
                PolicyKind::SimpleWeighted,
            ] {
                let cfg = SystemConfig {
                    metric,
                    policy,
                    warmup: 10.0,
                    measure: 50.0,
                    ..quick_cfg()
                };
                let report = CoopSystem::new(cfg, small_spec(5)).run();
                assert!(report.mean_divergence().is_finite());
            }
        }
    }

    fn faulty_cfg(fault: FaultProfile) -> SystemConfig {
        SystemConfig {
            fault: Some(fault),
            ..quick_cfg()
        }
    }

    #[test]
    fn refresh_loss_raises_divergence_and_is_accounted() {
        let clean = CoopSystem::new(quick_cfg(), small_spec(11)).run();
        let lossy = CoopSystem::new(
            faulty_cfg(FaultProfile {
                loss_prob: 0.4,
                ..FaultProfile::default()
            }),
            small_spec(11),
        )
        .run();
        assert!(lossy.faults.lost_refreshes > 0);
        // Every sent refresh is delivered, lost, or still queued; under
        // degrade-to-stale nothing is ever re-sent.
        assert!(
            lossy.refreshes_delivered + lossy.faults.lost_refreshes <= lossy.refreshes_sent,
            "delivered {} + lost {} > sent {}",
            lossy.refreshes_delivered,
            lossy.faults.lost_refreshes,
            lossy.refreshes_sent
        );
        assert!(
            lossy.mean_divergence() > clean.mean_divergence(),
            "loss {} vs clean {}",
            lossy.mean_divergence(),
            clean.mean_divergence()
        );
        // Degrade-to-stale performs no retransmissions.
        assert_eq!(lossy.faults.retransmits, 0);
    }

    #[test]
    fn retransmit_recovers_some_of_what_loss_costs() {
        let base = FaultProfile {
            loss_prob: 0.3,
            ..FaultProfile::default()
        };
        let degrade = CoopSystem::new(faulty_cfg(base), small_spec(12)).run();
        let retrans = CoopSystem::new(
            faulty_cfg(FaultProfile {
                recovery: RecoveryPolicy::Retransmit { deadline: 2.0 },
                ..base
            }),
            small_spec(12),
        )
        .run();
        assert!(retrans.faults.retransmits > 0);
        assert!(
            retrans.mean_divergence() <= degrade.mean_divergence() + 1e-9,
            "retransmit {} vs degrade {}",
            retrans.mean_divergence(),
            degrade.mean_divergence()
        );
    }

    #[test]
    fn outages_suspend_the_link_and_attribute_divergence() {
        let report = CoopSystem::new(
            faulty_cfg(FaultProfile {
                outage_rate: 0.05,
                outage_duration: 5.0,
                outage_drops_queue: true,
                ..FaultProfile::default()
            }),
            small_spec(13),
        )
        .run();
        assert!(report.faults.outages > 0);
        assert!(report.faults.outage_seconds > 0.0);
        assert!(report.faults.epoch_divergence >= 0.0);
    }

    #[test]
    fn crashes_miss_updates_and_resync_requotes() {
        let base = FaultProfile {
            crash_rate: 0.05,
            crash_downtime: 8.0,
            ..FaultProfile::default()
        };
        let degrade = CoopSystem::new(faulty_cfg(base), small_spec(14)).run();
        assert!(degrade.faults.crashes > 0);
        assert!(degrade.faults.down_seconds > 0.0);
        assert!(degrade.faults.missed_updates > 0);
        assert_eq!(degrade.faults.resync_quotes, 0);
        let resync = CoopSystem::new(
            faulty_cfg(FaultProfile {
                recovery: RecoveryPolicy::Resync,
                ..base
            }),
            small_spec(14),
        )
        .run();
        // Identical fault schedule (same seed, same lanes) — only the
        // recovery differs, and resync re-quotes diverged objects.
        assert_eq!(degrade.faults.crashes, resync.faults.crashes);
        assert_eq!(
            degrade.faults.down_seconds.to_bits(),
            resync.faults.down_seconds.to_bits()
        );
        assert!(resync.faults.resync_quotes > 0);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let fault = FaultProfile {
            loss_prob: 0.2,
            outage_rate: 0.03,
            outage_duration: 4.0,
            crash_rate: 0.02,
            crash_downtime: 6.0,
            recovery: RecoveryPolicy::Retransmit { deadline: 1.5 },
            ..FaultProfile::default()
        };
        let a = CoopSystem::new(faulty_cfg(fault), small_spec(15)).run();
        let b = CoopSystem::new(faulty_cfg(fault), small_spec(15)).run();
        assert_eq!(a.mean_divergence().to_bits(), b.mean_divergence().to_bits());
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.refreshes_delivered, b.refreshes_delivered);
    }

    #[test]
    fn stale_retransmission_cannot_overwrite_a_newer_refresh() {
        // Surgical delivery-order pin for the recency guard: a fresher
        // refresh lands first, then a retransmitted copy of an older
        // snapshot arrives late and must be discarded.
        let mut sys = CoopSystem::new(
            faulty_cfg(FaultProfile {
                loss_prob: 0.3,
                recovery: RecoveryPolicy::Retransmit { deadline: 2.0 },
                ..FaultProfile::default()
            }),
            small_spec(17),
        );
        let obj = ObjectId(0);
        let src = sys.layout.source_of(obj);
        let mk = |value: f64, updates: u64| RefreshMsg {
            obj,
            src,
            snapshot: Snapshot { value, updates },
            threshold: 1.0,
        };
        sys.deliver(SimTime::new(1.0), mk(2.5, 9));
        assert_eq!(sys.truth.truth(obj).cached_updates, 9);
        assert_eq!(sys.fault_stats.stale_drops, 0);
        sys.deliver(SimTime::new(1.5), mk(-4.0, 6));
        let t = sys.truth.truth(obj);
        assert_eq!(
            t.cached_updates, 9,
            "stale retransmission overwrote the newer refresh"
        );
        assert_eq!(t.cached_value, 2.5);
        assert_eq!(sys.fault_stats.stale_drops, 1);
        // An equal-count duplicate is stale too (<=, not <).
        sys.deliver(SimTime::new(2.0), mk(2.5, 9));
        assert_eq!(sys.fault_stats.stale_drops, 2);
        // Every arrival transited the link: all three count as delivered
        // and feed the per-source ack counter.
        assert_eq!(sys.refreshes_delivered, 3);
        let fl = sys.faults.as_ref().expect("fault layer present");
        assert_eq!(fl.delivered_per_source[src.index()], 3);
    }

    #[test]
    fn retries_hold_during_outages_and_superseded_retries_are_purged() {
        let mut sys = CoopSystem::new(
            faulty_cfg(FaultProfile {
                loss_prob: 0.3,
                recovery: RecoveryPolicy::Retransmit { deadline: 1.0 },
                ..FaultProfile::default()
            }),
            small_spec(18),
        );
        let obj = ObjectId(0);
        let src = sys.layout.source_of(obj);
        let mk = |value: f64, updates: u64| RefreshMsg {
            obj,
            src,
            snapshot: Snapshot { value, updates },
            threshold: 1.0,
        };
        // Two due retries: one that will be superseded, one still fresh.
        {
            let fl = sys.faults.as_mut().expect("fault layer present");
            fl.retries.push_back((SimTime::new(1.0), mk(1.0, 3)));
            fl.retries.push_back((SimTime::new(1.0), mk(2.0, 8)));
        }
        // While the link is suspended, retries must not burn credit.
        sys.cache_link.suspend(SimTime::new(2.0));
        sys.process_retries(SimTime::new(2.0));
        assert_eq!(sys.faults.as_ref().unwrap().retries.len(), 2);
        assert_eq!(sys.fault_stats.retransmits, 0);
        // A newer refresh (updates=5) supersedes the first retry only.
        sys.cache_link.resume(SimTime::new(3.0));
        sys.deliver(SimTime::new(3.0), mk(5.0, 5));
        sys.process_retries(SimTime::new(3.0));
        assert_eq!(sys.fault_stats.superseded_retries, 1);
        assert_eq!(sys.fault_stats.retransmits, 1);
        // The surviving retry was re-offered; the loss lane may lose the
        // retransmission itself, in which case it re-queues with a fresh
        // deadline — either way the original entries are gone.
        let fl = sys.faults.as_ref().expect("fault layer present");
        assert!(fl.retries.len() <= 1);
        if let Some((due, m)) = fl.retries.front() {
            assert_eq!(m.snapshot.updates, 8);
            assert_eq!(*due, SimTime::new(4.0));
            assert_eq!(sys.fault_stats.lost_refreshes, 1);
        }
    }

    #[test]
    fn aware_runs_differ_under_loss_but_match_without_faults() {
        let lossy = FaultProfile {
            loss_prob: 0.3,
            recovery: RecoveryPolicy::Retransmit { deadline: 2.0 },
            ..FaultProfile::default()
        };
        let blind = CoopSystem::new(faulty_cfg(lossy), small_spec(19)).run();
        let aware = CoopSystem::new(
            faulty_cfg(FaultProfile {
                aware: true,
                ..lossy
            }),
            small_spec(19),
        )
        .run();
        // Same loss lane, but the estimator reprices every quote — the
        // schedules must actually diverge for the tentpole to mean
        // anything.
        assert_ne!(
            blind.mean_divergence().to_bits(),
            aware.mean_divergence().to_bits()
        );
        assert!(aware.refreshes_sent > 0);
        // A zero-intensity aware profile never sees a lost refresh, so
        // every ack ratio is 1.0 and the estimator multiplies quotes by
        // exactly 1.0: bit-identical to the plain run.
        let plain = CoopSystem::new(quick_cfg(), small_spec(19)).run();
        let idle = CoopSystem::new(
            faulty_cfg(FaultProfile {
                aware: true,
                ..FaultProfile::default()
            }),
            small_spec(19),
        )
        .run();
        assert_eq!(
            plain.mean_divergence().to_bits(),
            idle.mean_divergence().to_bits()
        );
        assert_eq!(plain.refreshes_sent, idle.refreshes_sent);
        assert!(!idle.faults.any());
    }

    #[test]
    fn none_profile_is_bit_identical_to_fault_free() {
        let plain = CoopSystem::new(quick_cfg(), small_spec(16)).run();
        let gated = CoopSystem::new(
            SystemConfig {
                fault: None,
                ..quick_cfg()
            },
            small_spec(16),
        )
        .run();
        assert_eq!(
            plain.mean_divergence().to_bits(),
            gated.mean_divergence().to_bits()
        );
        assert_eq!(plain.refreshes_sent, gated.refreshes_sent);
        assert_eq!(plain.feedback_messages, gated.feedback_messages);
        assert!(!gated.faults.any());
    }
}

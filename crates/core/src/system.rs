//! The pragmatic cooperative synchronization system (paper §5).
//!
//! [`CoopSystem`] wires a [`WorkloadSpec`] into the full protocol:
//!
//! * **Sources** watch their objects, keep them "in priority order", and
//!   whenever source-side bandwidth permits, send the highest-priority
//!   object *if* its priority exceeds the local threshold `Tⱼ`; each send
//!   multiplies `Tⱼ` by `α·β` and piggybacks the new threshold.
//! * **The shared cache-side link** carries refresh messages; messages
//!   beyond its fluctuating capacity queue up (the flooding hazard).
//! * **The cache** applies delivered snapshots and, when it sees surplus
//!   bandwidth after serving the queue, spends the surplus on positive
//!   feedback messages to the highest-threshold sources, each dividing
//!   that source's threshold by ω (unless the source is saturated).
//!
//! Ground-truth divergence is accounted exactly by a
//! [`besync_data::TruthTable`]; note the asymmetry the paper exploits:
//! sources reason optimistically from their last *sent* snapshot, while
//! the truth reflects what actually reached the cache and when.

use besync_data::ids::ObjectLayout;
use besync_data::{ObjectId, SourceId, TruthTable};
use besync_net::Link;
use besync_sim::stats::RunningStats;
use besync_sim::{CalendarQueue, SimTime};
use besync_workloads::{Updater, WorkloadSpec};
use rand::rngs::SmallRng;

use crate::cache::CacheRuntime;
use crate::config::SystemConfig;
use crate::report::RunReport;
use crate::source::{Snapshot, SourceRuntime};

/// A refresh message in flight from a source to the cache.
#[derive(Debug, Clone, Copy)]
pub struct RefreshMsg {
    /// The object being refreshed.
    pub obj: ObjectId,
    /// Originating source.
    pub src: SourceId,
    /// The (send-time) snapshot of the object.
    pub snapshot: Snapshot,
    /// The source's local threshold, piggybacked (§5).
    pub threshold: f64,
}

/// The full cooperative system of the paper, ready to run.
///
/// Events live in a [`CalendarQueue`]: object `i`'s (single) pending
/// update occupies slot `i`, and two extra slots carry the per-second tick
/// and the end-of-warm-up marker. The bucket width is sized from the
/// workload's aggregate update rate, so the dominant update→next-update
/// pattern costs an O(1) bucket push plus a short scan of one hot bucket —
/// no O(log n) heap sift, no pointer-chasing through cold cache lines. The
/// queue orders by `(time, schedule seq)` exactly like the generic
/// [`besync_sim::EventQueue`], so trajectories are bit-identical to the
/// heap-based representation.
pub struct CoopSystem {
    cfg: SystemConfig,
    layout: ObjectLayout,
    truth: TruthTable,
    sources: Vec<SourceRuntime>,
    cache_link: Link<RefreshMsg>,
    cache: CacheRuntime,
    queue: CalendarQueue,
    /// Slot id of the per-second tick event (`total_objects`).
    tick_slot: u32,
    /// Slot id of the end-of-warm-up event (`total_objects + 1`).
    warmup_slot: u32,
    /// Source owning each object (precomputed: the per-event division in
    /// `ObjectLayout::source_of` is measurable at millions of events/sec).
    obj_source: Vec<u32>,
    /// Each object's updater and its RNG stream, kept adjacent: `fire`
    /// touches both on every event, so one cache line beats two.
    updaters: Vec<(Updater, SmallRng)>,
    scratch: Vec<RefreshMsg>,
    /// Reusable feedback target buffer (zero steady-state allocation).
    feedback_targets: Vec<u32>,
    refreshes_delivered: u64,
    updates_processed: u64,
    /// Refreshes delivered since the last tick (feeds the utilization
    /// estimate below).
    deliveries_this_tick: u64,
    /// EWMA of refresh deliveries per tick: the cache's estimate of the
    /// bandwidth refreshes will need, reserved before spending "excess"
    /// on feedback. The paper's cache "continually monitors cache-side
    /// bandwidth utilization" (§5); reserving the running utilization is
    /// what keeps feedback from stealing bandwidth that refreshes arriving
    /// later in the tick would have used.
    delivery_rate_ewma: f64,
}

impl CoopSystem {
    /// Builds the system from a configuration and workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload spec is internally inconsistent or if
    /// `bound_rates` is required/mismatched (see
    /// [`crate::priority::PolicyKind::Bound`]).
    pub fn new(cfg: SystemConfig, spec: WorkloadSpec) -> Self {
        spec.validate().expect("invalid workload spec");
        let layout = spec.layout;
        let m = layout.sources();
        let truth = TruthTable::new(cfg.metric, &spec.initial_values, spec.weights.clone());
        let tparams = cfg.threshold_params(m);

        let mut sources = Vec::with_capacity(m as usize);
        for sid in layout.all_sources() {
            let base = sid.0 * layout.objects_per_source();
            let lo = base as usize;
            let hi = lo + layout.objects_per_source() as usize;
            let bound_rates = cfg.bound_rates.as_ref().map(|all| all[lo..hi].to_vec());
            sources.push(SourceRuntime::new(
                sid,
                base,
                &spec.initial_values[lo..hi],
                spec.weights[lo..hi].to_vec(),
                spec.rates[lo..hi].to_vec(),
                Link::new(cfg.source_wave(sid.0)),
                tparams,
                cfg.metric,
                cfg.policy,
                cfg.estimator,
                bound_rates,
                SimTime::ZERO,
            ));
        }

        let cache_link = Link::new(cfg.cache_wave());
        let cache = CacheRuntime::new(
            m,
            cfg.initial_threshold,
            cfg.feedback_targeting,
            cfg.sim_seed,
        );

        let rngs = spec.object_rngs();
        let total = spec.total_objects();
        let tick_slot = total as u32;
        let warmup_slot = total as u32 + 1;
        // Bucket width ≈ the mean gap between consecutive events
        // (aggregate update rate plus the once-per-second tick), the
        // occupancy-one sweet spot for a calendar queue.
        let event_rate = spec.rates.iter().sum::<f64>() + 1.0 / cfg.tick.max(1e-6);
        let mut queue = CalendarQueue::new(total + 2, 1.0 / event_rate);
        // Scheduling order matters: the queue breaks same-instant ties by
        // schedule order, and this order (warm-up, tick, objects) is the
        // one the golden trajectories were recorded under.
        queue.schedule(warmup_slot, SimTime::new(cfg.warmup));
        queue.schedule(tick_slot, SimTime::new(cfg.tick));
        let mut updaters: Vec<(Updater, SmallRng)> = spec.updaters.into_iter().zip(rngs).collect();
        for obj in layout.all_objects() {
            let idx = obj.index();
            let (updater, rng) = &mut updaters[idx];
            if let Some(t0) = updater.first_time(SimTime::ZERO, rng) {
                queue.schedule(obj.0, t0);
            }
        }
        let obj_source = layout
            .all_objects()
            .map(|o| layout.source_of(o).0)
            .collect();

        CoopSystem {
            cfg,
            layout,
            truth,
            sources,
            cache_link,
            cache,
            queue,
            tick_slot,
            warmup_slot,
            obj_source,
            updaters,
            scratch: Vec::new(),
            feedback_targets: Vec::new(),
            refreshes_delivered: 0,
            updates_processed: 0,
            deliveries_this_tick: 0,
            delivery_rate_ewma: 0.0,
        }
    }

    /// Runs to the configured horizon and reports.
    pub fn run(mut self) -> RunReport {
        let horizon = SimTime::new(self.cfg.horizon());
        self.run_until(horizon);
        self.report(horizon)
    }

    /// Processes every event at or before `t` (the simulation can then be
    /// inspected mid-run and resumed — used by tests and benchmarks).
    pub fn run_until(&mut self, t: SimTime) {
        while let Some((now, slot)) = self.queue.pop_at_or_before(t) {
            if slot < self.tick_slot {
                // An object update — by far the dominant event.
                if let Some(next) = self.on_update(now, ObjectId(slot)) {
                    self.queue.schedule(slot, next);
                }
            } else if slot == self.tick_slot {
                self.on_tick(now);
            } else {
                debug_assert_eq!(slot, self.warmup_slot);
                self.truth.begin_measurement(now);
            }
        }
    }

    /// Finishes a stepped run: accounts divergence up to the configured
    /// horizon and reports, exactly as [`CoopSystem::run`] would.
    pub fn into_report(self) -> RunReport {
        let horizon = SimTime::new(self.cfg.horizon());
        self.report(horizon)
    }

    /// The configured end of simulated time.
    pub fn horizon(&self) -> SimTime {
        SimTime::new(self.cfg.horizon())
    }

    /// Read access to the per-source runtimes (tests, diagnostics).
    pub fn sources(&self) -> &[SourceRuntime] {
        &self.sources
    }

    /// How objects are laid out over sources.
    pub fn layout(&self) -> ObjectLayout {
        self.layout
    }

    /// The ground truth (for inspection mid-construction or in tests).
    pub fn truth(&self) -> &TruthTable {
        &self.truth
    }

    /// Handles one object update and returns the time of that object's
    /// next update, if any. Does NOT touch the event queue — the caller
    /// reschedules the slot in place.
    fn on_update(&mut self, now: SimTime, obj: ObjectId) -> Option<SimTime> {
        self.updates_processed += 1;
        let idx = obj.index();
        let sid = self.obj_source[idx] as usize;
        let source = &mut self.sources[sid];
        let local = source.local(obj);
        let current = source.state(local).value;
        let (updater, rng) = &mut self.updaters[idx];
        let (value, next) = updater.fire(now, current, rng);
        let weight = self.truth.source_update(now, obj, value);
        source.record_update_weighted(now, local, value, weight);
        // §3.4: "sources have direct knowledge of update times and decide
        // whether to refresh immediately after each update".
        self.attempt_sends(now, sid);
        next
    }

    fn on_tick(&mut self, now: SimTime) {
        // 1) Deliver queued refreshes as capacity allows.
        let mut msgs = std::mem::take(&mut self.scratch);
        msgs.clear();
        self.cache_link.service(now, &mut msgs);
        for msg in &msgs {
            self.deliver(now, *msg);
        }
        self.scratch = msgs;

        // 2) Time-dependent policies (Bound) need fresh quotes each tick.
        if !self.cfg.policy.piecewise_constant() {
            for s in &mut self.sources {
                s.requote_all(now);
            }
        }

        // 3) Each source ships what its credit and threshold allow.
        for sid in 0..self.sources.len() {
            self.attempt_sends(now, sid);
        }

        // 4) Update the utilization estimate, then spend genuine surplus
        //    on positive feedback (§5), aimed at the highest thresholds.
        self.delivery_rate_ewma =
            0.8 * self.delivery_rate_ewma + 0.2 * self.deliveries_this_tick as f64;
        self.deliveries_this_tick = 0;
        self.send_feedback(now);

        self.queue.schedule(self.tick_slot, now + self.cfg.tick);
    }

    /// Sends from source `sid` while (a) an over-threshold candidate
    /// exists and (b) source-side credit remains. Updates the saturation
    /// flag per §5 footnote 3.
    fn attempt_sends(&mut self, now: SimTime, sid: usize) {
        loop {
            let (priority, local) = match self.sources[sid].candidate() {
                Some(c) => c,
                None => {
                    self.sources[sid].saturated = false;
                    return;
                }
            };
            if priority <= self.sources[sid].threshold.value() {
                self.sources[sid].saturated = false;
                return;
            }
            if !self.sources[sid].uplink.try_consume(now, 1.0) {
                // Over-threshold work pending but no source bandwidth.
                self.sources[sid].saturated = true;
                return;
            }
            let snapshot = self.sources[sid].mark_sent(now, local);
            let msg = RefreshMsg {
                obj: self.sources[sid].global(local),
                src: self.sources[sid].id,
                snapshot,
                threshold: self.sources[sid].threshold.value(),
            };
            if let Some(delivered) = self.cache_link.offer(now, msg) {
                self.deliver(now, delivered);
            }
        }
    }

    fn send_feedback(&mut self, now: SimTime) {
        if self.cache_link.has_backlog() {
            return;
        }
        // Reserve the bandwidth refreshes have been using; only what's
        // left beyond that is surplus. Without the reserve, feedback sent
        // at the tick boundary starves refreshes that arrive mid-tick.
        let surplus = (self.cache_link.credit(now) - self.delivery_rate_ewma).floor();
        if surplus < 1.0 {
            return;
        }
        let k = (surplus as usize).min(self.sources.len());
        if k == 0 {
            return;
        }
        // The target list is built into a buffer owned by this struct (not
        // the cache), so we can iterate it while mutating cache state; it
        // is reused across ticks, keeping the steady state allocation-free.
        let mut targets = std::mem::take(&mut self.feedback_targets);
        self.cache.select_targets_into(k, &mut targets);
        for &sid in &targets {
            // Refreshes triggered by earlier feedback may have refilled
            // the queue; surplus is gone then.
            if !self.cache_link.try_consume(now, 1.0) {
                break;
            }
            self.cache.feedback_sent += 1;
            let sid = sid as usize;
            let saturated = self.sources[sid].saturated;
            self.sources[sid].threshold.on_feedback(now, saturated);
            // The lowered threshold may make objects eligible right away.
            self.attempt_sends(now, sid);
        }
        self.feedback_targets = targets;
    }

    fn deliver(&mut self, now: SimTime, msg: RefreshMsg) {
        self.truth
            .apply_refresh(now, msg.obj, msg.snapshot.value, msg.snapshot.updates);
        self.cache.observe_threshold(msg.src, msg.threshold);
        self.refreshes_delivered += 1;
        self.deliveries_this_tick += 1;
    }

    fn report(self, horizon: SimTime) -> RunReport {
        let mut threshold_stats = RunningStats::new();
        let mut refreshes_sent = 0;
        for s in &self.sources {
            threshold_stats.push(s.threshold.value());
            refreshes_sent += s.sends;
        }
        let link_stats = self.cache_link.stats();
        RunReport {
            divergence: self.truth.report(horizon),
            refreshes_sent,
            refreshes_delivered: self.refreshes_delivered,
            feedback_messages: self.cache.feedback_sent,
            polls_sent: 0,
            max_cache_queue: link_stats.max_queue,
            mean_queue_wait: link_stats.total_wait / (link_stats.delivered.max(1) as f64),
            threshold_stats,
            updates_processed: self.updates_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::PolicyKind;
    use besync_data::Metric;
    use besync_workloads::generators::{random_walk_poisson, PoissonWorkloadOptions};

    fn small_spec(seed: u64) -> WorkloadSpec {
        random_walk_poisson(
            PoissonWorkloadOptions {
                sources: 4,
                objects_per_source: 5,
                rate_range: (0.05, 0.5),
                weight_range: (1.0, 1.0),
                fluctuating_weights: false,
            },
            seed,
        )
    }

    fn quick_cfg() -> SystemConfig {
        SystemConfig {
            metric: Metric::Staleness,
            cache_bandwidth_mean: 10.0,
            source_bandwidth_mean: 5.0,
            warmup: 20.0,
            measure: 100.0,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn runs_and_reports() {
        let report = CoopSystem::new(quick_cfg(), small_spec(1)).run();
        assert!(report.updates_processed > 0);
        assert!(report.refreshes_sent > 0);
        assert!(report.refreshes_delivered <= report.refreshes_sent);
        assert!(report.mean_divergence() >= 0.0);
        assert!(report.mean_divergence() <= 1.0); // staleness is 0/1
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = CoopSystem::new(quick_cfg(), small_spec(7)).run();
        let b = CoopSystem::new(quick_cfg(), small_spec(7)).run();
        assert_eq!(a.mean_divergence(), b.mean_divergence());
        assert_eq!(a.refreshes_sent, b.refreshes_sent);
        assert_eq!(a.feedback_messages, b.feedback_messages);
    }

    #[test]
    fn ample_bandwidth_keeps_divergence_low() {
        let cfg = SystemConfig {
            cache_bandwidth_mean: 1000.0,
            source_bandwidth_mean: 1000.0,
            ..quick_cfg()
        };
        let report = CoopSystem::new(cfg, small_spec(2)).run();
        // With bandwidth far above the update rate and feedback pulling
        // thresholds down, staleness should be small.
        assert!(
            report.mean_divergence() < 0.2,
            "divergence {} too high for ample bandwidth",
            report.mean_divergence()
        );
        assert!(report.feedback_messages > 0);
    }

    #[test]
    fn starved_bandwidth_raises_divergence() {
        let rich = CoopSystem::new(
            SystemConfig {
                cache_bandwidth_mean: 50.0,
                ..quick_cfg()
            },
            small_spec(3),
        )
        .run();
        let poor = CoopSystem::new(
            SystemConfig {
                cache_bandwidth_mean: 0.5,
                ..quick_cfg()
            },
            small_spec(3),
        )
        .run();
        assert!(poor.mean_divergence() > rich.mean_divergence());
    }

    #[test]
    fn no_unbounded_flooding() {
        // Starve the cache massively; the positive-feedback design must
        // keep the queue bounded (thresholds rise in the absence of
        // feedback).
        let cfg = SystemConfig {
            cache_bandwidth_mean: 0.5,
            source_bandwidth_mean: 50.0,
            warmup: 50.0,
            measure: 300.0,
            ..quick_cfg()
        };
        let report = CoopSystem::new(cfg, small_spec(4)).run();
        assert!(
            report.max_cache_queue < 100,
            "cache queue peaked at {}",
            report.max_cache_queue
        );
    }

    #[test]
    fn works_with_all_metrics_and_policies() {
        for metric in Metric::all_three() {
            for policy in [
                PolicyKind::Area,
                PolicyKind::PoissonClosedForm,
                PolicyKind::SimpleWeighted,
            ] {
                let cfg = SystemConfig {
                    metric,
                    policy,
                    warmup: 10.0,
                    measure: 50.0,
                    ..quick_cfg()
                };
                let report = CoopSystem::new(cfg, small_spec(5)).run();
                assert!(report.mean_divergence().is_finite());
            }
        }
    }
}

//! Priority heaps over per-source object quotes.
//!
//! Sources keep their modified objects "in priority order" (paper Figure
//! 2) so the highest-priority object is found quickly whenever bandwidth
//! frees up (§8). Priorities change only when an object is updated (§8.2),
//! so at most one quote per object is ever current — which is exactly the
//! shape of the workspace-wide [`besync_sim::IndexedHeap`];
//! [`IndexedMaxHeap`] is its priority-ordered wrapper and **the
//! production scheduler** used by every source runtime and by
//! [`crate::IdealSystem`].
//!
//! [`LazyMaxHeap`] is the classic lazy-invalidation alternative: every
//! recomputation pushes a fresh entry stamped with a per-object version,
//! stale entries are discarded when they surface at the top, and the heap
//! self-compacts when stale entries dominate (order-preserving GC — see
//! [`LazyMaxHeap::compact`]). Since the PR 2 scheduler unification it is
//! **not** on any production path; it survives as the independent oracle
//! the property tests drive the indexed heap against (two structurally
//! different implementations of the same ordering contract make silent
//! sift bugs loud).
//!
//! [`push`]: LazyMaxHeap::push

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use besync_sim::{HeapKey, IndexedHeap};

/// One heap entry: a priority quote for a local object index.
#[derive(Debug, Clone, Copy)]
struct Entry {
    priority: f64,
    version: u64,
    item: u32,
    /// Global quote sequence number: ties are served FIFO (the quote that
    /// has waited longest wins). This matters for discrete priorities —
    /// under the staleness metric whole cohorts tie at `1·W`, and an
    /// id-based tie-break would permanently starve high ids.
    seq: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by priority; ties FIFO by quote age (smaller seq =
        // greater entry), fully deterministic.
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A max-heap over `n` items with O(1) priority revision via lazy
/// invalidation.
#[derive(Debug, Clone)]
pub struct LazyMaxHeap {
    heap: BinaryHeap<Entry>,
    /// Monotone quote counter for FIFO tie-breaking.
    next_seq: u64,
    /// Current version per item; heap entries with older versions are
    /// stale. `u64::MAX` bit tricks are avoided: version 0 = never pushed.
    versions: Vec<u64>,
    /// Number of live (current-version) entries in the heap.
    live: usize,
}

impl LazyMaxHeap {
    /// Creates a heap for items `0..n`.
    pub fn new(n: usize) -> Self {
        LazyMaxHeap {
            heap: BinaryHeap::with_capacity(n.min(1024)),
            next_seq: 0,
            versions: vec![0; n],
            live: 0,
        }
    }

    /// Number of items the heap covers.
    pub fn items(&self) -> usize {
        self.versions.len()
    }

    /// Number of live entries (items with a current quote in the heap).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total entries including stale ones (for compaction heuristics).
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// Quotes a new priority for `item`, superseding any previous quote.
    pub fn push(&mut self, item: u32, priority: f64) {
        let idx = item as usize;
        if self.versions[idx] != 0 && self.entry_is_live(idx) {
            // The previous quote becomes stale.
            self.live -= 1;
        }
        self.versions[idx] = self.versions[idx].wrapping_add(1);
        self.mark_live(idx);
        self.live += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            priority,
            version: self.versions[idx],
            item,
            seq,
        });
        if self.needs_compaction() {
            self.compact();
        }
    }

    /// Removes `item`'s current quote, if any (e.g. after sending it).
    pub fn invalidate(&mut self, item: u32) {
        let idx = item as usize;
        if self.entry_is_live(idx) {
            self.live -= 1;
            self.mark_dead(idx);
            self.versions[idx] = self.versions[idx].wrapping_add(1);
        }
    }

    /// The current top (priority, item) without removing it, discarding
    /// stale entries that surface.
    pub fn peek_valid(&mut self) -> Option<(f64, u32)> {
        while let Some(top) = self.heap.peek() {
            if self.is_current(top) {
                return Some((top.priority, top.item));
            }
            self.heap.pop();
        }
        None
    }

    /// Removes and returns the top valid (priority, item).
    pub fn pop_valid(&mut self) -> Option<(f64, u32)> {
        let (p, item) = self.peek_valid()?;
        self.heap.pop();
        self.live -= 1;
        self.mark_dead(item as usize);
        self.versions[item as usize] = self.versions[item as usize].wrapping_add(1);
        Some((p, item))
    }

    /// Whether stale entries dominate enough to be worth garbage
    /// collecting. [`LazyMaxHeap::push`] checks this automatically; with
    /// that trigger, `raw_len() <= max(65, 4 * live() + 1)` always holds.
    pub fn needs_compaction(&self) -> bool {
        self.heap.len() > 64 && self.heap.len() > 4 * self.live.max(1)
    }

    /// Garbage-collects stale entries in place.
    ///
    /// Every live entry keeps its original quote — priority, version, and
    /// FIFO sequence number — so compaction never changes what
    /// [`LazyMaxHeap::peek_valid`] / [`LazyMaxHeap::pop_valid`] return.
    /// O(`raw_len`), no priority recomputation.
    pub fn compact(&mut self) {
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| {
            self.versions[e.item as usize] == e.version && self.entry_is_live(e.item as usize)
        });
        self.heap = BinaryHeap::from(entries);
    }

    /// Rebuilds the heap from an iterator of live (item, priority) quotes.
    /// All previous quotes are dropped.
    pub fn rebuild(&mut self, live: impl IntoIterator<Item = (u32, f64)>) {
        self.heap.clear();
        for v in &mut self.versions {
            *v = (*v & !LIVE_BIT).wrapping_add(1);
        }
        self.live = 0;
        for (item, priority) in live {
            let idx = item as usize;
            self.mark_live(idx);
            self.live += 1;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry {
                priority,
                version: self.versions[idx],
                item,
                seq,
            });
        }
    }

    fn is_current(&self, e: &Entry) -> bool {
        self.versions[e.item as usize] == e.version && self.entry_is_live(e.item as usize)
    }

    fn entry_is_live(&self, idx: usize) -> bool {
        self.versions[idx] & LIVE_BIT != 0
    }

    fn mark_live(&mut self, idx: usize) {
        self.versions[idx] |= LIVE_BIT;
    }

    fn mark_dead(&mut self, idx: usize) {
        self.versions[idx] &= !LIVE_BIT;
    }
}

/// High bit of the version word doubles as the "has a live quote" flag.
const LIVE_BIT: u64 = 1 << 63;

/// Max-priority quote key: higher priority wins; priority ties are served
/// FIFO (the older quote — smaller seq — wins), exactly like
/// [`LazyMaxHeap`]'s ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PriorityKey {
    priority: f64,
    seq: u64,
}

impl HeapKey for PriorityKey {
    #[inline]
    fn beats(&self, other: &Self) -> bool {
        match self.priority.total_cmp(&other.priority) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// An indexed max-heap over `n` items: at most one entry per item, revised
/// **in place** (a sift instead of a stale push), removed in place on
/// [`IndexedMaxHeap::invalidate`]. The priority-flavoured wrapper over the
/// workspace-wide [`besync_sim::IndexedHeap`]; the time-flavoured sibling
/// is [`besync_sim::SlotQueue`] — one sift implementation serves every
/// scheduler in the tree.
///
/// Same ordering contract as [`LazyMaxHeap`] — max priority first, FIFO by
/// quote seq within a priority tie — and a drop-in method surface, so the
/// two are interchangeable wherever pop order is all that matters. The
/// trade-off: `push` here pays a sift immediately (lazy `push` is an O(log
/// n) heap append and defers the cost), but no stale entry ever exists, so
/// the steady state never pays the lazy structure's amortized
/// root-discard sift, its memory is exactly one entry per live item, and
/// compaction is structurally unnecessary. For the hot source runtime —
/// where every update revises a quote and most quotes move only a few
/// levels — in-place revision is measurably faster end-to-end.
#[derive(Debug, Clone)]
pub struct IndexedMaxHeap {
    heap: IndexedHeap<PriorityKey>,
    /// Monotone quote counter for FIFO tie-breaking.
    next_seq: u64,
}

impl IndexedMaxHeap {
    /// Creates a heap for items `0..n`.
    pub fn new(n: usize) -> Self {
        IndexedMaxHeap {
            heap: IndexedHeap::new(n),
            next_seq: 0,
        }
    }

    /// Number of items the heap covers.
    pub fn items(&self) -> usize {
        self.heap.items()
    }

    /// Number of live entries (items with a current quote).
    pub fn live(&self) -> usize {
        self.heap.len()
    }

    /// Total entries — identical to [`IndexedMaxHeap::live`]; the indexed
    /// representation stores no stale entries, so `raw_len == live` is an
    /// invariant rather than a compaction goal.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// Quotes a new priority for `item`, superseding any previous quote.
    /// In-place revision: the entry moves whichever way the new priority
    /// sends it (a fresh seq loses ties, hence downward on equal
    /// priority).
    pub fn push(&mut self, item: u32, priority: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(item, PriorityKey { priority, seq });
    }

    /// Removes `item`'s current quote, if any (e.g. after sending it).
    pub fn invalidate(&mut self, item: u32) {
        self.heap.remove(item);
    }

    /// The current top (priority, item) without removing it.
    pub fn peek_valid(&self) -> Option<(f64, u32)> {
        self.heap.peek().map(|(k, item)| (k.priority, item))
    }

    /// Removes and returns the top (priority, item).
    pub fn pop_valid(&mut self) -> Option<(f64, u32)> {
        self.heap.pop().map(|(k, item)| (k.priority, item))
    }

    /// Rebuilds from an iterator of live (item, priority) quotes, dropping
    /// all previous quotes. Fresh seqs are assigned in iteration order,
    /// matching [`LazyMaxHeap::rebuild`].
    pub fn rebuild(&mut self, live: impl IntoIterator<Item = (u32, f64)>) {
        self.heap.clear();
        for (item, priority) in live {
            self.push(item, priority);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut h = LazyMaxHeap::new(4);
        h.push(0, 1.0);
        h.push(1, 5.0);
        h.push(2, 3.0);
        assert_eq!(h.pop_valid(), Some((5.0, 1)));
        assert_eq!(h.pop_valid(), Some((3.0, 2)));
        assert_eq!(h.pop_valid(), Some((1.0, 0)));
        assert_eq!(h.pop_valid(), None);
    }

    #[test]
    fn newer_quote_supersedes() {
        let mut h = LazyMaxHeap::new(2);
        h.push(0, 10.0);
        h.push(0, 2.0); // revised downward
        h.push(1, 5.0);
        assert_eq!(h.pop_valid(), Some((5.0, 1)));
        assert_eq!(h.pop_valid(), Some((2.0, 0)));
        assert_eq!(h.pop_valid(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut h = LazyMaxHeap::new(1);
        h.push(0, 7.0);
        assert_eq!(h.peek_valid(), Some((7.0, 0)));
        assert_eq!(h.peek_valid(), Some((7.0, 0)));
        assert_eq!(h.pop_valid(), Some((7.0, 0)));
    }

    #[test]
    fn invalidate_removes_quote() {
        let mut h = LazyMaxHeap::new(2);
        h.push(0, 9.0);
        h.push(1, 1.0);
        h.invalidate(0);
        assert_eq!(h.pop_valid(), Some((1.0, 1)));
        assert_eq!(h.pop_valid(), None);
        // Re-quoting after invalidation works.
        h.push(0, 4.0);
        assert_eq!(h.pop_valid(), Some((4.0, 0)));
    }

    #[test]
    fn live_count_tracks_quotes() {
        let mut h = LazyMaxHeap::new(3);
        assert_eq!(h.live(), 0);
        h.push(0, 1.0);
        h.push(1, 2.0);
        assert_eq!(h.live(), 2);
        h.push(0, 3.0); // revision, not a new live item
        assert_eq!(h.live(), 2);
        h.invalidate(1);
        assert_eq!(h.live(), 1);
        h.pop_valid();
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn compaction_rebuild() {
        let mut h = LazyMaxHeap::new(8);
        // Churn revisions; automatic GC must keep raw_len bounded.
        for round in 0..200 {
            for i in 0..8 {
                h.push(i, round as f64 + i as f64);
            }
            assert!(
                h.raw_len() <= 65.max(4 * h.live() + 1),
                "raw {}",
                h.raw_len()
            );
        }
        let live: Vec<(u32, f64)> = (0..8).map(|i| (i, i as f64)).collect();
        h.rebuild(live);
        assert_eq!(h.raw_len(), 8);
        assert_eq!(h.live(), 8);
        assert_eq!(h.pop_valid(), Some((7.0, 7)));
        assert_eq!(h.peek_valid(), Some((6.0, 6)));
    }

    #[test]
    fn auto_compaction_bounds_raw_len() {
        let mut h = LazyMaxHeap::new(4);
        for round in 0..10_000 {
            let item = (round % 4) as u32;
            h.push(item, (round as f64 * 0.7) % 13.0);
            if round % 3 == 0 {
                h.invalidate(item);
            }
            assert!(
                h.raw_len() <= 65.max(4 * h.live() + 1),
                "round {round}: raw {} live {}",
                h.raw_len(),
                h.live()
            );
        }
    }

    #[test]
    fn manual_compact_preserves_pop_order() {
        let mut a = LazyMaxHeap::new(16);
        for round in 0..50 {
            for i in 0..16 {
                // Deliberate ties (mod 5) exercise the FIFO tie-break.
                a.push(i, ((round + i as i32 * 3) % 5) as f64);
            }
        }
        for i in (0..16).step_by(3) {
            a.invalidate(i);
        }
        let mut b = a.clone();
        b.compact();
        assert!(b.raw_len() <= a.raw_len());
        loop {
            let (x, y) = (a.pop_valid(), b.pop_valid());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut a = LazyMaxHeap::new(4);
        let mut b = LazyMaxHeap::new(4);
        for h in [&mut a, &mut b] {
            h.push(2, 1.0);
            h.push(0, 1.0);
            h.push(3, 1.0);
            h.push(1, 1.0);
        }
        for _ in 0..4 {
            assert_eq!(a.pop_valid(), b.pop_valid());
        }
    }

    #[test]
    fn negative_priorities_are_fine() {
        let mut h = LazyMaxHeap::new(2);
        h.push(0, -5.0);
        h.push(1, -1.0);
        assert_eq!(h.pop_valid(), Some((-1.0, 1)));
        assert_eq!(h.pop_valid(), Some((-5.0, 0)));
    }

    #[test]
    fn indexed_basic_order_and_revision() {
        let mut h = IndexedMaxHeap::new(4);
        h.push(0, 1.0);
        h.push(1, 5.0);
        h.push(2, 3.0);
        h.push(1, 0.5); // revised downward, in place
        assert_eq!(h.live(), 3);
        assert_eq!(h.pop_valid(), Some((3.0, 2)));
        assert_eq!(h.pop_valid(), Some((1.0, 0)));
        assert_eq!(h.pop_valid(), Some((0.5, 1)));
        assert_eq!(h.pop_valid(), None);
    }

    #[test]
    fn indexed_invalidate_and_rebuild() {
        let mut h = IndexedMaxHeap::new(4);
        for i in 0..4 {
            h.push(i, i as f64);
        }
        h.invalidate(3);
        assert_eq!(h.peek_valid(), Some((2.0, 2)));
        h.rebuild([(1, 9.0), (0, 9.0)]);
        assert_eq!(h.live(), 2);
        // Equal priorities: FIFO by rebuild order.
        assert_eq!(h.pop_valid(), Some((9.0, 1)));
        assert_eq!(h.pop_valid(), Some((9.0, 0)));
    }

    /// The indexed heap and the lazy heap implement the same ordering
    /// contract: drive both with an identical operation stream (including
    /// deliberate priority ties) and demand identical observations.
    #[test]
    fn indexed_matches_lazy_heap() {
        let mut lazy = LazyMaxHeap::new(16);
        let mut indexed = IndexedMaxHeap::new(16);
        let mut state = 0xD1B54A32D192ED03u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20_000 {
            match rnd() % 8 {
                0..=4 => {
                    let item = (rnd() % 16) as u32;
                    let p = (rnd() % 7) as f64 - 3.0; // few levels → many ties
                    lazy.push(item, p);
                    indexed.push(item, p);
                }
                5 => {
                    let item = (rnd() % 16) as u32;
                    lazy.invalidate(item);
                    indexed.invalidate(item);
                }
                6 => {
                    assert_eq!(lazy.pop_valid(), indexed.pop_valid());
                }
                _ => {
                    assert_eq!(lazy.peek_valid(), indexed.peek_valid());
                }
            }
            assert_eq!(lazy.live(), indexed.live());
            assert_eq!(indexed.raw_len(), indexed.live());
        }
    }
}

//! The idealized cooperative scheduler (paper §3.3).
//!
//! The paper's yardstick: "all sources and the cache share knowledge
//! about each others' state without using network resources, and sources
//! are aware of available cache-side bandwidth. ... Each time there is
//! enough cache-side bandwidth to accept a refresh, the object with the
//! highest refresh priority among all objects at all sources should be
//! refreshed. If the source containing the highest priority object does
//! not have enough source-side bandwidth ... the object with the second
//! highest priority overall should be refreshed instead, and so on."
//!
//! [`IdealSystem`] implements exactly that with a global priority heap and
//! instantaneous (zero-latency, zero-overhead) refreshes. Its measured
//! divergence is the "theoretically achievable divergence" on the x-axis
//! of Figure 4 and the "ideal cooperative" curves of Figures 5–6.

use besync_data::ids::ObjectLayout;
use besync_data::{Metric, ObjectId, TruthTable, WeightSet};
use besync_net::Link;
use besync_sim::stats::RunningStats;
use besync_sim::{CalendarQueue, SimTime};
use besync_workloads::{Updater, WorkloadSpec};
use rand::rngs::SmallRng;

use crate::config::SystemConfig;
use crate::fault::{FaultSummary, LossLane};
use crate::heap::IndexedMaxHeap;
use crate::priority::{compute_priority, AreaTracker, BoundTracker, PolicyKind, PriorityInputs};
use crate::report::RunReport;

/// Per-object scheduler state (the ideal scheduler sees every object
/// directly, so there is no per-source bookkeeping beyond the uplinks).
/// Compressed to 56 bytes with `u32` update counters, mirroring
/// [`crate::source::ObjectState`] — counter arithmetic widens to `u64`
/// before the metric/estimator sees it, so priorities are bit-identical
/// to the wide layout.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct ObjState {
    value: f64,
    snap_value: f64,
    area: AreaTracker,
    updates: u32,
    snap_updates: u32,
}

const _: () = assert!(std::mem::size_of::<ObjState>() == 56);

/// The omniscient scheduler defining "theoretically achievable"
/// divergence.
///
/// Runs on the same fast scheduler stack as [`crate::CoopSystem`]: events
/// live in a [`CalendarQueue`] (object `i`'s single pending update in
/// slot `i`, plus the tick and end-of-warm-up singletons), and the global
/// priority order lives in an [`IndexedMaxHeap`]. Both order exactly like
/// the `EventQueue` + `LazyMaxHeap` pair this system originally ran on,
/// so trajectories are bit-identical — `tests/scheduler_equivalence.rs`
/// pins the pre-port counters.
pub struct IdealSystem {
    cfg: SystemConfig,
    layout: ObjectLayout,
    truth: TruthTable,
    states: Vec<ObjState>,
    bounds: Option<Vec<BoundTracker>>,
    /// Per-object weights behind the dense constant fast path (see
    /// [`WeightSet`]); `priority_of` runs on every update.
    weights: WeightSet,
    rates: Vec<f64>,
    uplinks: Vec<Link<()>>,
    cache_link: Link<()>,
    heap: IndexedMaxHeap,
    queue: CalendarQueue,
    /// Slot id of the per-second tick event (`total_objects`).
    tick_slot: u32,
    /// Slot id of the end-of-warm-up event (`total_objects + 1`).
    warmup_slot: u32,
    updaters: Vec<Updater>,
    rngs: Vec<SmallRng>,
    refreshes: u64,
    updates_processed: u64,
    stash: Vec<(f64, u32)>,
    /// Reusable buffer for requote sweeps (zero steady-state allocation).
    quote_scratch: Vec<(u32, f64)>,
    start: SimTime,
    /// Refresh-loss lane when a fault profile with positive loss is
    /// configured. The ideal scheduler has no message queue or link
    /// outages — of the simulated-world fault classes only loss applies,
    /// which is what the loss-sweep figure compares systems under.
    loss: Option<LossLane>,
    fault_stats: FaultSummary,
}

impl IdealSystem {
    /// Builds the idealized system from the same configuration/workload a
    /// [`crate::CoopSystem`] takes, so the two are directly comparable on
    /// identical update sequences.
    pub fn new(cfg: SystemConfig, mut spec: WorkloadSpec) -> Self {
        spec.validate().expect("invalid workload spec");
        let layout = spec.layout;
        let total = spec.total_objects();
        let truth = TruthTable::new(cfg.metric, &spec.initial_values, spec.weights.clone());
        let bounds = cfg.bound_rates.as_ref().map(|rs| {
            assert_eq!(rs.len(), total, "one bound rate per object");
            rs.iter()
                .map(|&r| BoundTracker::new(SimTime::ZERO, r, 0.0))
                .collect()
        });
        assert!(
            !matches!(cfg.policy, PolicyKind::Bound) || bounds.is_some(),
            "Bound policy requires bound rates"
        );
        let states = spec
            .initial_values
            .iter()
            .map(|&v| ObjState {
                value: v,
                snap_value: v,
                area: AreaTracker::new(SimTime::ZERO),
                updates: 0,
                snap_updates: 0,
            })
            .collect();
        let uplinks = layout
            .all_sources()
            .map(|s| Link::new(cfg.source_wave(s.0)))
            .collect();
        let cache_link = Link::new(cfg.cache_wave());

        let mut rngs = spec.object_rngs();
        let tick_slot = total as u32;
        let warmup_slot = total as u32 + 1;
        // Bucket width ≈ the mean gap between consecutive events
        // (aggregate update rate plus the once-per-second tick), the
        // occupancy-one sweet spot for a calendar queue.
        let event_rate = spec.rates.iter().sum::<f64>() + 1.0 / cfg.tick.max(1e-6);
        let mut queue = CalendarQueue::new(total + 2, 1.0 / event_rate);
        // Scheduling order matters: the queue breaks same-instant ties by
        // schedule order, and this order (warm-up, tick, objects) is the
        // one the pre-port trajectories were recorded under.
        queue.schedule(warmup_slot, SimTime::new(cfg.warmup));
        queue.schedule(tick_slot, SimTime::new(cfg.tick));
        for obj in layout.all_objects() {
            let idx = obj.index();
            if let Some(t0) = spec.updaters[idx].first_time(SimTime::ZERO, &mut rngs[idx]) {
                queue.schedule(obj.0, t0);
            }
        }

        let loss = cfg.fault.and_then(|profile| {
            profile.validate().expect("invalid fault profile");
            (profile.loss_prob > 0.0).then(|| LossLane::new(cfg.sim_seed, 0, profile.loss_prob))
        });

        IdealSystem {
            cfg,
            layout,
            truth,
            states,
            bounds,
            weights: WeightSet::new(spec.weights),
            rates: spec.rates,
            uplinks,
            cache_link,
            heap: IndexedMaxHeap::new(total),
            queue,
            tick_slot,
            warmup_slot,
            updaters: spec.updaters,
            rngs,
            refreshes: 0,
            updates_processed: 0,
            stash: Vec::new(),
            quote_scratch: Vec::new(),
            start: SimTime::ZERO,
            loss,
            fault_stats: FaultSummary::default(),
        }
    }

    /// Runs to the horizon and reports.
    pub fn run(mut self) -> RunReport {
        let horizon = SimTime::new(self.cfg.horizon());
        while let Some((now, slot)) = self.queue.pop_at_or_before(horizon) {
            if slot < self.tick_slot {
                self.on_update(now, ObjectId(slot));
            } else if slot == self.tick_slot {
                self.on_tick(now);
            } else {
                debug_assert_eq!(slot, self.warmup_slot);
                self.truth.begin_measurement(now);
            }
        }
        RunReport {
            divergence: self.truth.report(horizon),
            refreshes_sent: self.refreshes,
            refreshes_delivered: self.refreshes - self.fault_stats.lost_refreshes,
            feedback_messages: 0,
            polls_sent: 0,
            max_cache_queue: 0,
            mean_queue_wait: 0.0,
            threshold_stats: RunningStats::new(),
            updates_processed: self.updates_processed,
            faults: self.fault_stats,
        }
    }

    fn priority_of(&self, now: SimTime, obj: u32) -> f64 {
        let idx = obj as usize;
        let st = &self.states[idx];
        let divergence = self.cfg.metric.divergence(
            st.value,
            st.updates as u64,
            st.snap_value,
            st.snap_updates as u64,
        );
        let since_refresh = (st.updates - st.snap_updates) as u64;
        let lambda_hat = self.cfg.estimator.estimate(
            self.rates[idx],
            st.updates as u64,
            now - self.start,
            since_refresh,
            now - st.area.last_refresh(),
        );
        let inputs = PriorityInputs {
            now,
            divergence,
            updates_since_refresh: since_refresh,
            lambda_hat,
            weight: self.weights.weight_at(idx, now),
            max_rate: self.bounds.as_ref().map_or(0.0, |b| b[idx].max_rate),
        };
        compute_priority(
            self.cfg.policy,
            matches!(self.cfg.metric, Metric::Deviation(_)),
            &st.area,
            &inputs,
        )
    }

    fn on_update(&mut self, now: SimTime, obj: ObjectId) {
        self.updates_processed += 1;
        let idx = obj.index();
        let current = self.states[idx].value;
        let (value, next) = self.updaters[idx].fire(now, current, &mut self.rngs[idx]);
        self.truth.source_update(now, obj, value);
        {
            let st = &mut self.states[idx];
            st.value = value;
            st.updates += 1;
            let d = self.cfg.metric.divergence(
                st.value,
                st.updates as u64,
                st.snap_value,
                st.snap_updates as u64,
            );
            st.area.on_update(now, d);
        }
        let p = self.priority_of(now, obj.0);
        // The indexed heap revises this object's quote in place.
        self.heap.push(obj.0, p);
        self.drain(now);
        if let Some(t) = next {
            self.queue.schedule(obj.0, t);
        }
    }

    fn on_tick(&mut self, now: SimTime) {
        if !self.cfg.policy.piecewise_constant() {
            self.requote_all(now);
        }
        self.drain(now);
        self.queue.schedule(self.tick_slot, now + self.cfg.tick);
    }

    fn requote_all(&mut self, now: SimTime) {
        // Only objects with something to ship need a quote; the scratch
        // buffer makes the sweep allocation-free in steady state.
        let mut quotes = std::mem::take(&mut self.quote_scratch);
        quotes.clear();
        for o in 0..self.states.len() as u32 {
            if self.states[o as usize].updates > self.states[o as usize].snap_updates {
                quotes.push((o, self.priority_of(now, o)));
            }
        }
        self.heap.rebuild(quotes.drain(..));
        self.quote_scratch = quotes;
    }

    /// Refresh the globally highest-priority feasible object while
    /// cache-side credit lasts, skipping (but retaining) objects whose
    /// source uplink is exhausted — the §3.3 rule.
    fn drain(&mut self, now: SimTime) {
        self.stash.clear();
        loop {
            if self.cache_link.credit(now) < 1.0 {
                break;
            }
            let (p, obj) = match self.heap.peek_valid() {
                Some(top) => top,
                None => break,
            };
            if p <= 0.0 {
                break;
            }
            let sid = self.layout.source_of(ObjectId(obj));
            if !self.uplinks[sid.index()].try_consume(now, 1.0) {
                // Source-side constrained: skip to the next-highest.
                self.heap.pop_valid();
                self.stash.push((p, obj));
                continue;
            }
            let consumed = self.cache_link.try_consume(now, 1.0);
            debug_assert!(consumed, "credit checked above");
            self.heap.pop_valid();
            self.refresh(now, ObjectId(obj));
        }
        // Skipped objects keep their quotes for the next opportunity.
        let stash = std::mem::take(&mut self.stash);
        for (p, obj) in &stash {
            self.heap.push(*obj, *p);
        }
        self.stash = stash;
    }

    fn refresh(&mut self, now: SimTime, obj: ObjectId) {
        let idx = obj.index();
        {
            let st = &mut self.states[idx];
            st.snap_value = st.value;
            st.snap_updates = st.updates;
            st.area.on_refresh(now);
        }
        if let Some(bounds) = &mut self.bounds {
            bounds[idx].on_refresh(now);
        }
        // The scheduler believes the refresh succeeded either way (the
        // sending side cannot observe a silent loss).
        if self.loss.as_mut().is_some_and(|l| l.draw()) {
            self.fault_stats.lost_refreshes += 1;
        } else {
            // Instantaneous and perfectly fresh (the idealized assumption).
            self.truth.apply_fresh_refresh(now, obj);
        }
        self.refreshes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use besync_workloads::generators::{random_walk_poisson, PoissonWorkloadOptions};

    fn spec(seed: u64) -> WorkloadSpec {
        random_walk_poisson(
            PoissonWorkloadOptions {
                sources: 4,
                objects_per_source: 5,
                rate_range: (0.05, 0.5),
                weight_range: (1.0, 1.0),
                fluctuating_weights: false,
            },
            seed,
        )
    }

    fn cfg() -> SystemConfig {
        SystemConfig {
            cache_bandwidth_mean: 10.0,
            source_bandwidth_mean: 5.0,
            warmup: 20.0,
            measure: 100.0,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn runs_and_reports() {
        let r = IdealSystem::new(cfg(), spec(1)).run();
        assert!(r.refreshes_sent > 0);
        assert!(r.mean_divergence() >= 0.0);
        assert_eq!(r.feedback_messages, 0);
        assert_eq!(r.max_cache_queue, 0);
    }

    #[test]
    fn deterministic() {
        let a = IdealSystem::new(cfg(), spec(9)).run();
        let b = IdealSystem::new(cfg(), spec(9)).run();
        assert_eq!(a.mean_divergence(), b.mean_divergence());
        assert_eq!(a.refreshes_sent, b.refreshes_sent);
    }

    #[test]
    fn more_bandwidth_never_hurts_much() {
        let tight = IdealSystem::new(
            SystemConfig {
                cache_bandwidth_mean: 1.0,
                ..cfg()
            },
            spec(3),
        )
        .run();
        let ample = IdealSystem::new(
            SystemConfig {
                cache_bandwidth_mean: 100.0,
                source_bandwidth_mean: 100.0,
                ..cfg()
            },
            spec(3),
        )
        .run();
        assert!(ample.mean_divergence() <= tight.mean_divergence() + 1e-9);
        // With bandwidth ≫ update rate, near-zero staleness.
        assert!(
            ample.mean_divergence() < 0.05,
            "{}",
            ample.mean_divergence()
        );
    }

    #[test]
    fn respects_source_side_limits() {
        // One source with zero uplink: its objects can never refresh, so
        // they should pile up divergence while others stay synced.
        let mut s = spec(4);
        // All objects of source 0 get huge update rates; cap the sim by
        // checking the run completes and divergence is sane.
        s.rates.iter_mut().for_each(|r| *r = 0.2);
        let r = IdealSystem::new(
            SystemConfig {
                source_bandwidth_mean: 0.0,
                cache_bandwidth_mean: 100.0,
                ..cfg()
            },
            s,
        )
        .run();
        // No source bandwidth at all → no refreshes anywhere.
        assert_eq!(r.refreshes_sent, 0);
        assert!(r.mean_divergence() > 0.5);
    }
}

//! Token-bucket links with FIFO queues.

use std::collections::VecDeque;

use besync_sim::signal::Signal;
use besync_sim::{SimTime, Wave};

/// Counters describing a link's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Messages accepted (queued or delivered immediately).
    pub offered: u64,
    /// Messages delivered out of the queue or by cut-through.
    pub delivered: u64,
    /// Messages delivered without queueing (cut-through).
    pub immediate: u64,
    /// Units consumed by `try_consume` (e.g. feedback, polling overhead).
    pub consumed_units: f64,
    /// Largest queue length observed.
    pub max_queue: usize,
    /// Total seconds messages spent waiting in the queue.
    pub total_wait: f64,
    /// Queued messages discarded by [`Link::drop_queue`] (outage policy).
    pub dropped: u64,
}

/// A unidirectional, capacity-constrained link carrying messages of type
/// `M`.
///
/// Capacity accrues continuously as credit (exactly, by integrating the
/// capacity signal), up to a burst cap; each message costs one credit.
/// Messages offered when no credit is available wait in a FIFO queue and
/// are released by [`Link::service`] calls as credit accrues.
#[derive(Debug, Clone)]
pub struct Link<M> {
    capacity: Wave,
    credit: f64,
    burst_cap: f64,
    last_accrual: SimTime,
    queue: VecDeque<(SimTime, M)>,
    stats: LinkStats,
    /// While `true` the link is in an outage window: capacity accrues
    /// nothing, nothing transits, offers queue. Never set on the
    /// fault-free path, so the arithmetic there is untouched.
    suspended: bool,
}

impl<M> Link<M> {
    /// Default burst window in seconds: idle links may bank up to this many
    /// seconds of capacity (never less than 2 messages' worth), modelling
    /// per-tick bandwidth accounting with a little slack rather than an
    /// unbounded backlog of "saved" bandwidth.
    pub const DEFAULT_BURST_SECONDS: f64 = 2.0;

    /// Creates a link with the given capacity signal and the default burst
    /// cap.
    pub fn new(capacity: Wave) -> Self {
        let burst = (capacity.mean() * Self::DEFAULT_BURST_SECONDS).max(2.0);
        Self::with_burst_cap(capacity, burst)
    }

    /// Creates a link with an explicit burst cap (in message units).
    ///
    /// # Panics
    ///
    /// Panics if `burst_cap < 1` (the link could never send anything).
    pub fn with_burst_cap(capacity: Wave, burst_cap: f64) -> Self {
        assert!(
            burst_cap >= 1.0,
            "burst cap must allow at least one message"
        );
        Link {
            capacity,
            credit: 0.0,
            burst_cap,
            last_accrual: SimTime::ZERO,
            queue: VecDeque::new(),
            stats: LinkStats::default(),
            suspended: false,
        }
    }

    /// The link's capacity signal.
    pub fn capacity(&self) -> Wave {
        self.capacity
    }

    /// Replaces the capacity signal (used by experiments that change
    /// regimes mid-run). Credit already accrued is kept.
    pub fn set_capacity(&mut self, now: SimTime, capacity: Wave) {
        self.accrue(now);
        self.capacity = capacity;
    }

    fn accrue(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_accrual, "link time went backwards");
        if now > self.last_accrual {
            if !self.suspended {
                self.credit = (self.credit + self.capacity.integral(self.last_accrual, now))
                    .min(self.burst_cap);
            }
            self.last_accrual = now;
        }
    }

    /// Enters an outage window at `now`: credit earned up to `now` is
    /// banked, then accrual stops and nothing transits until
    /// [`Link::resume`]. Idempotent.
    pub fn suspend(&mut self, now: SimTime) {
        self.accrue(now);
        self.suspended = true;
    }

    /// Ends an outage window at `now`. The window itself contributes no
    /// credit. Idempotent.
    pub fn resume(&mut self, now: SimTime) {
        self.accrue(now);
        self.suspended = false;
    }

    /// Whether the link is currently in an outage window.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Discards every queued message (the drop-queue outage policy),
    /// returning how many were dropped.
    pub fn drop_queue(&mut self) -> usize {
        let n = self.queue.len();
        self.queue.clear();
        self.stats.dropped += n as u64;
        n
    }

    /// Current credit after accruing up to `now`.
    pub fn credit(&mut self, now: SimTime) -> f64 {
        self.accrue(now);
        self.credit
    }

    /// Whether one message could be sent right now without queueing.
    pub fn can_send(&mut self, now: SimTime) -> bool {
        self.accrue(now);
        !self.suspended && self.credit >= 1.0 && self.queue.is_empty()
    }

    /// Offers a message to the link. If the queue is empty and credit is
    /// available the message cuts through and is returned for immediate
    /// delivery (the paper neglects propagation time); otherwise it queues
    /// and `None` is returned.
    pub fn offer(&mut self, now: SimTime, msg: M) -> Option<M> {
        self.accrue(now);
        self.stats.offered += 1;
        if !self.suspended && self.queue.is_empty() && self.credit >= 1.0 {
            self.credit -= 1.0;
            self.stats.delivered += 1;
            self.stats.immediate += 1;
            Some(msg)
        } else {
            self.queue.push_back((now, msg));
            self.stats.max_queue = self.stats.max_queue.max(self.queue.len());
            None
        }
    }

    /// Releases as many queued messages as accrued credit allows, in FIFO
    /// order, appending them to `out`. Returns how many were delivered.
    pub fn service(&mut self, now: SimTime, out: &mut Vec<M>) -> usize {
        self.accrue(now);
        let mut n = 0;
        while !self.suspended && self.credit >= 1.0 {
            match self.queue.pop_front() {
                Some((enq, msg)) => {
                    self.credit -= 1.0;
                    self.stats.delivered += 1;
                    self.stats.total_wait += now - enq;
                    out.push(msg);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Attempts to consume `units` of credit for non-message traffic
    /// (feedback, poll requests). Only succeeds when the queue is empty —
    /// overhead traffic must never preempt queued refreshes — and enough
    /// credit is available. Returns whether the units were consumed.
    pub fn try_consume(&mut self, now: SimTime, units: f64) -> bool {
        debug_assert!(units >= 0.0);
        self.accrue(now);
        if !self.suspended && self.queue.is_empty() && self.credit >= units {
            self.credit -= units;
            self.stats.consumed_units += units;
            true
        } else {
            false
        }
    }

    /// Reorders the waiting queue by `key`, highest first (stable: equal
    /// keys keep FIFO order). Enqueue times travel with their messages,
    /// so waiting-time accounting is unaffected. Used by the fault-aware
    /// outage-resume policy to re-prioritize a held backlog instead of
    /// FIFO-draining it.
    pub fn reorder_queue_by(&mut self, mut key: impl FnMut(&M) -> f64) {
        self.queue
            .make_contiguous()
            .sort_by(|a, b| key(&b.1).total_cmp(&key(&a.1)));
    }

    /// Number of messages waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether messages are waiting.
    pub fn has_backlog(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::new(s)
    }

    fn constant_link(rate: f64) -> Link<u32> {
        Link::new(Wave::Constant(rate))
    }

    #[test]
    fn idle_link_cuts_through() {
        let mut l = constant_link(10.0);
        assert_eq!(l.offer(t(1.0), 7), Some(7));
        assert_eq!(l.stats().immediate, 1);
        assert_eq!(l.queue_len(), 0);
    }

    #[test]
    fn messages_queue_beyond_capacity() {
        let mut l = constant_link(2.0);
        // At t=1 credit is 2 (capped by burst): two cut through, rest queue.
        assert!(l.offer(t(1.0), 1).is_some());
        assert!(l.offer(t(1.0), 2).is_some());
        assert!(l.offer(t(1.0), 3).is_none());
        assert!(l.offer(t(1.0), 4).is_none());
        assert_eq!(l.queue_len(), 2);

        // One second later 2 more credits accrued: both drain, FIFO.
        let mut out = Vec::new();
        assert_eq!(l.service(t(2.0), &mut out), 2);
        assert_eq!(out, vec![3, 4]);
        assert!(!l.has_backlog());
    }

    #[test]
    fn fifo_order_preserved_under_backlog() {
        let mut l = constant_link(1.0);
        let _ = l.offer(t(1.0), 0);
        for i in 1..=5 {
            assert!(l.offer(t(1.0), i).is_none());
        }
        let mut out = Vec::new();
        l.service(t(3.0), &mut out); // 2 credits accrued
        l.service(t(6.0), &mut out); // 3 accrued but burst-capped at 2
        assert_eq!(out, vec![1, 2, 3, 4]);
        l.service(t(7.0), &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn cut_through_disabled_while_backlogged() {
        let mut l = constant_link(1.0);
        let _ = l.offer(t(1.0), 1);
        assert!(l.offer(t(1.0), 2).is_none()); // backlog begins
                                               // Later there is credit, but the queue must drain first: no
                                               // cut-through past queued messages.
        assert!(l.offer(t(5.0), 3).is_none());
        let mut out = Vec::new();
        l.service(t(5.0), &mut out);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn throughput_bounded_by_capacity_integral() {
        let cap = Wave::from_peak_rate(5.0, 0.25, 0.5, 0.3);
        let mut l: Link<u64> = Link::new(cap);
        let mut delivered = 0u64;
        let mut out = Vec::new();
        // Saturate the link for 100 ticks.
        for k in 1..=100 {
            let now = t(k as f64);
            for i in 0..20 {
                if l.offer(now, k * 100 + i).is_some() {
                    delivered += 1;
                }
            }
            out.clear();
            delivered += l.service(now, &mut out) as u64;
        }
        let max = cap.integral(t(0.0), t(100.0)) + l.burst_cap;
        assert!(
            (delivered as f64) <= max + 1.0,
            "delivered {delivered} exceeds capacity {max}"
        );
        // And the link should be close to fully utilized.
        assert!((delivered as f64) >= cap.integral(t(0.0), t(100.0)) - l.burst_cap - 1.0);
    }

    #[test]
    fn burst_cap_limits_banked_credit() {
        let mut l = constant_link(10.0); // burst cap = 20
        assert_eq!(l.credit(t(100.0)), 20.0);
        // A sub-unit-capacity link still gets a floor of 2.
        let mut slow: Link<u32> = Link::new(Wave::Constant(0.1));
        assert_eq!(slow.credit(t(1000.0)), 2.0);
    }

    #[test]
    fn try_consume_respects_queue_and_credit() {
        let mut l = constant_link(2.0);
        assert!(l.try_consume(t(1.0), 1.0));
        assert!(l.try_consume(t(1.0), 1.0));
        assert!(!l.try_consume(t(1.0), 1.0)); // out of credit
        let _ = l.offer(t(1.0), 9); // queues (no credit)
        assert!(!l.try_consume(t(10.0), 1.0)); // backlog blocks overhead
        let mut out = Vec::new();
        l.service(t(10.0), &mut out);
        assert!(l.try_consume(t(10.0), 1.0)); // drained: overhead ok again
        assert_eq!(l.stats().consumed_units, 3.0);
    }

    #[test]
    fn waiting_time_is_tracked() {
        let mut l = constant_link(1.0);
        let _ = l.offer(t(0.5), 1); // t=0.5: credit 0.5 → queues
        let mut out = Vec::new();
        l.service(t(2.0), &mut out);
        assert_eq!(out, vec![1]);
        assert!((l.stats().total_wait - 1.5).abs() < 1e-12);
    }

    #[test]
    fn can_send_reflects_state() {
        let mut l = constant_link(1.0);
        assert!(!l.can_send(t(0.0))); // no credit yet
        assert!(l.can_send(t(1.0)));
        let _ = l.offer(t(1.0), 1);
        assert!(!l.can_send(t(1.0)));
    }

    #[test]
    #[should_panic(expected = "burst cap")]
    fn rejects_tiny_burst_cap() {
        let _: Link<u32> = Link::with_burst_cap(Wave::Constant(1.0), 0.5);
    }

    #[test]
    fn suspension_freezes_accrual_and_transit() {
        let mut l = constant_link(10.0);
        assert_eq!(l.credit(t(1.0)), 10.0);
        l.suspend(t(1.0));
        assert!(l.is_suspended());
        // No accrual across the outage, banked credit kept.
        assert_eq!(l.credit(t(5.0)), 10.0);
        // Nothing transits: offers queue, overhead fails, service idles.
        assert!(!l.can_send(t(5.0)));
        assert!(l.offer(t(5.0), 1).is_none());
        assert!(!l.try_consume(t(5.0), 1.0));
        let mut out = Vec::new();
        assert_eq!(l.service(t(5.0), &mut out), 0);
        assert!(out.is_empty());
        // Resume: the window contributed no credit, then accrual restarts.
        l.resume(t(5.0));
        assert_eq!(l.credit(t(5.0)), 10.0);
        assert_eq!(l.service(t(5.0), &mut out), 1);
        assert_eq!(out, vec![1]);
        assert_eq!(l.credit(t(6.0)), 19.0);
    }

    #[test]
    fn drop_queue_discards_and_counts() {
        let mut l = constant_link(1.0);
        let _ = l.offer(t(0.0), 1);
        let _ = l.offer(t(0.0), 2);
        assert_eq!(l.queue_len(), 2);
        assert_eq!(l.drop_queue(), 2);
        assert_eq!(l.queue_len(), 0);
        assert_eq!(l.stats().dropped, 2);
        assert_eq!(l.drop_queue(), 0);
    }

    #[test]
    fn reorder_queue_is_stable_and_keeps_wait_accounting() {
        let mut l = constant_link(2.0); // burst cap 4: all four drain at once
        let _ = l.offer(t(0.0), 10); // cut-through blocked: no credit at t=0
        let _ = l.offer(t(0.0), 21);
        let _ = l.offer(t(0.5), 22);
        let _ = l.offer(t(1.0), 30);
        // Key by tens digit: 30 first, then the two 2x entries in FIFO
        // order (stability), then 10.
        l.reorder_queue_by(|m| (*m / 10) as f64);
        let mut out = Vec::new();
        l.service(t(4.0), &mut out);
        assert_eq!(out, vec![30, 21, 22, 10]);
        // Waits follow the messages: 30 enqueued at t=1 (wait 3), 21 and
        // 22 at t=0/0.5 (waits 4, 3.5), 10 at t=0 (wait 4).
        assert!((l.stats().total_wait - (3.0 + 4.0 + 3.5 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn suspend_and_resume_are_idempotent() {
        let mut l = constant_link(2.0);
        l.suspend(t(1.0));
        l.suspend(t(2.0));
        assert_eq!(l.credit(t(3.0)), 2.0);
        l.resume(t(3.0));
        l.resume(t(3.0));
        assert!(!l.is_suspended());
        assert_eq!(l.credit(t(4.0)), 4.0);
    }
}

//! Bandwidth-constrained network substrate.
//!
//! The paper assumes "a standard underlying network model where any
//! messages for which there is not enough capacity become enqueued for
//! later transmission" (§1.2), with every message costing one unit of
//! bandwidth (§6). [`Link`] models exactly that: a token bucket replenished
//! by a (possibly fluctuating) capacity signal, with a FIFO queue for
//! messages that exceed the instantaneous capacity.
//!
//! Queueing is the crux of the paper's stability argument: an
//! over-aggressive refresh policy floods the shared cache-side link, stalls
//! refreshes in its queue, and *increases* divergence — which is why the
//! threshold algorithm relies on positive rather than negative feedback
//! (§5). The link keeps enough statistics (queue peaks, waiting time) for
//! experiments to observe that effect directly.

pub mod link;

pub use link::{Link, LinkStats};

//! Property tests for the network substrate: conservation, ordering, and
//! capacity discipline under arbitrary traffic patterns.

use besync_net::Link;
use besync_sim::signal::Signal;
use besync_sim::{SimTime, Wave};
use proptest::prelude::*;

/// A scripted traffic pattern: at each (monotonically increasing) time,
/// offer `k` messages, then service.
fn traffic() -> impl Strategy<Value = Vec<(f64, u8)>> {
    prop::collection::vec((0.01f64..5.0, 0u8..10), 1..60)
}

proptest! {
    /// Messages are conserved: everything offered is either delivered or
    /// still queued, and nothing is duplicated.
    #[test]
    fn conservation(steps in traffic(), rate in 0.1f64..20.0) {
        let mut link: Link<u64> = Link::new(Wave::Constant(rate));
        let mut next_id = 0u64;
        let mut delivered = Vec::new();
        let mut now = 0.0;
        for &(gap, k) in &steps {
            now += gap;
            let t = SimTime::new(now);
            for _ in 0..k {
                if let Some(m) = link.offer(t, next_id) {
                    delivered.push(m);
                }
                next_id += 1;
            }
            let mut out = Vec::new();
            link.service(t, &mut out);
            delivered.extend(out);
        }
        prop_assert_eq!(delivered.len() + link.queue_len(), next_id as usize);
        // No duplicates and delivery order is exactly offer order (FIFO +
        // cut-through cannot reorder).
        for w in delivered.windows(2) {
            prop_assert!(w[0] < w[1], "out of order: {:?}", w);
        }
    }

    /// Deliveries never exceed the capacity integral plus the burst cap.
    #[test]
    fn capacity_discipline(
        steps in traffic(),
        mean in 0.1f64..20.0,
        m_b in 0.0f64..0.4,
    ) {
        let cap = Wave::fluctuating(mean, m_b, 1.0);
        let mut link: Link<u64> = Link::new(cap);
        let mut delivered = 0usize;
        let mut now = 0.0;
        for &(gap, k) in &steps {
            now += gap;
            let t = SimTime::new(now);
            for i in 0..k {
                if link.offer(t, i as u64).is_some() {
                    delivered += 1;
                }
            }
            let mut out = Vec::new();
            delivered += link.service(t, &mut out);
        }
        let max = cap.integral(SimTime::ZERO, SimTime::new(now)) + mean * 2.0 + 2.0;
        prop_assert!(delivered as f64 <= max + 1.0,
            "delivered {delivered} > capacity bound {max}");
    }

    /// Overhead consumption (`try_consume`) never succeeds while refresh
    /// messages wait, for any interleaving.
    #[test]
    fn overhead_never_preempts_queue(steps in traffic(), rate in 0.1f64..5.0) {
        let mut link: Link<u64> = Link::new(Wave::Constant(rate));
        let mut now = 0.0;
        for &(gap, k) in &steps {
            now += gap;
            let t = SimTime::new(now);
            for i in 0..k {
                let _ = link.offer(t, i as u64);
            }
            if link.has_backlog() {
                prop_assert!(!link.try_consume(t, 1.0));
            }
            let mut out = Vec::new();
            link.service(t, &mut out);
        }
    }

    /// Credit is bounded by the burst cap at all times.
    #[test]
    fn credit_bounded(gaps in prop::collection::vec(0.01f64..100.0, 1..30), rate in 0.1f64..50.0) {
        let mut link: Link<u64> = Link::new(Wave::Constant(rate));
        let burst = (rate * Link::<u64>::DEFAULT_BURST_SECONDS).max(2.0);
        let mut now = 0.0;
        for &gap in &gaps {
            now += gap;
            let c = link.credit(SimTime::new(now));
            prop_assert!(c <= burst + 1e-9, "credit {c} above burst cap {burst}");
            prop_assert!(c >= 0.0);
        }
    }

    /// Credit accrual under a sine-wave capacity matches the closed-form
    /// integral regardless of where the accrual boundaries fall: accruing
    /// piecewise over arbitrary `credit()` call times must telescope to
    /// `∫₀ᵗ B(τ) dτ` exactly (up to float round-off), because each piece
    /// uses the analytic antiderivative. This is the path the
    /// fluctuating-bandwidth scenarios (`m_B > 0`) exercise on every
    /// link; a drifting piecewise sum would silently skew their budgets.
    #[test]
    fn sine_accrual_matches_closed_form(
        gaps in prop::collection::vec(0.0f64..7.0, 1..40),
        mean in 0.5f64..20.0,
        m_b in 1e-3f64..0.4,
        amplitude in 0.05f64..1.0,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let cap = Wave::from_peak_rate(mean, m_b, amplitude, phase);
        // Huge burst cap: the min() clamp must never engage, so credit
        // is exactly the accrued integral.
        let mut link: Link<u8> = Link::with_burst_cap(cap, 1e15);
        let mut now = 0.0;
        for &gap in &gaps {
            now += gap;
            let t = SimTime::new(now);
            let credit = link.credit(t);
            let want = cap.integral(SimTime::ZERO, t);
            // Relative tolerance scaled by segment count: each piecewise
            // accrual contributes one rounding step.
            let tol = 1e-12 * want.abs().max(1.0) * gaps.len() as f64;
            prop_assert!(
                (credit - want).abs() <= tol,
                "piecewise credit {credit} vs closed form {want} at t={now}"
            );
        }
    }

    /// Cut-through happens exactly when the queue is empty and credit
    /// suffices — mirrored by `can_send`.
    #[test]
    fn cut_through_iff_can_send(steps in traffic(), rate in 0.1f64..10.0) {
        let mut link: Link<u64> = Link::new(Wave::Constant(rate));
        let mut now = 0.0;
        for &(gap, k) in &steps {
            now += gap;
            let t = SimTime::new(now);
            for i in 0..k {
                let predicted = link.can_send(t);
                let got = link.offer(t, i as u64).is_some();
                prop_assert_eq!(predicted, got);
            }
            let mut out = Vec::new();
            link.service(t, &mut out);
        }
    }
}

//! Golden byte-identity tests for the process-sharded sweep runner.
//!
//! The contract under test: a figure grid run with `--shards 0`
//! (in-process threads), `--shards 1`, or `--shards 4` (worker
//! processes) produces **byte-identical CSV output** — over child-process
//! pipes *and* over the TCP transport — and no worker fault changes a
//! single byte either: not a crash mid-grid (respawn + resubmission),
//! not a hang caught by the per-spec deadline, not even every worker
//! slot dying (graceful degradation to in-process completion). The
//! workers are real child processes — the `experiments` binary in its
//! hidden `--sweep-worker` mode — so these tests cross the same channels
//! production sweeps cross.
//!
//! `crates/sweep/tests/end_to_end.rs` covers the supervisor mechanics on
//! tiny scenario batches; this file pins the figure-grid deliverable.

use std::path::PathBuf;
use std::time::Duration;

use besync_experiments::output::render_csv;
use besync_experiments::{fig4, fig6, params, Mode};
use besync_sweep::{
    BackoffPolicy, Shards, SweepOptions, TransportKind, WorkerSpawn, ABORT_ENV, FAULT_ENV,
};

/// Locates the `experiments` binary next to this test executable
/// (`target/<profile>/deps/<test>-<hash>` → `target/<profile>/`),
/// refreshing it through cargo first: a filtered
/// `cargo test --test sweep_equivalence` never builds other packages'
/// binaries, so without the rebuild these tests could compare current
/// in-process code against a *stale* worker. The rebuild is a no-op
/// when the binary is already fresh, and runs once per test process.
fn experiments_binary() -> PathBuf {
    static BIN: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    BIN.get_or_init(|| {
        let exe = std::env::current_exe().expect("test executable path");
        let dir = exe
            .parent()
            .and_then(|deps| deps.parent())
            .expect("target profile dir");
        let bin = dir.join(format!("experiments{}", std::env::consts::EXE_SUFFIX));
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let mut cmd = std::process::Command::new(cargo);
        cmd.args(["build", "-p", "besync_experiments", "--bin", "experiments"]);
        if dir.file_name().and_then(|n| n.to_str()) == Some("release") {
            cmd.arg("--release");
        }
        let status = cmd
            .status()
            .expect("spawn cargo to build the worker binary");
        assert!(
            status.success(),
            "building the experiments worker binary failed"
        );
        assert!(bin.exists(), "no worker binary at {}", bin.display());
        bin
    })
    .clone()
}

fn opts(shards: Shards) -> SweepOptions {
    SweepOptions {
        shards,
        worker: WorkerSpawn::Command(experiments_binary(), vec!["--sweep-worker".to_string()]),
        // Near-zero backoff: the schedule itself is pinned by its own
        // property tests; here a real delay would only slow CI.
        backoff: BackoffPolicy {
            base_ms: 1,
            cap_ms: 8,
            seed: 0xbe57_c0de,
        },
        ..SweepOptions::default()
    }
}

fn tcp(mut o: SweepOptions) -> SweepOptions {
    o.transport = TransportKind::Tcp {
        bind: "127.0.0.1:0".to_string(),
    };
    o
}

const SEED: u64 = 42;

fn fig4_in_process() -> String {
    render_csv(&fig4::run_with(Mode::Quick, SEED, &opts(Shards::InProcess)).unwrap())
}

#[test]
fn fig4_quick_grid_is_byte_identical_across_shard_counts() {
    let in_process = fig4_in_process();
    for shards in [1u32, 4] {
        let sharded =
            render_csv(&fig4::run_with(Mode::Quick, SEED, &opts(Shards::Workers(shards))).unwrap());
        assert_eq!(
            in_process, sharded,
            "--shards {shards} CSV diverges from the in-process run"
        );
    }
}

#[test]
fn fig4_quick_grid_is_byte_identical_over_tcp() {
    let in_process = fig4_in_process();
    for shards in [1u32, 4] {
        let sharded = render_csv(
            &fig4::run_with(Mode::Quick, SEED, &tcp(opts(Shards::Workers(shards)))).unwrap(),
        );
        assert_eq!(
            in_process, sharded,
            "--shards {shards} over TCP diverges from the in-process run"
        );
    }
}

#[test]
fn fig6_and_param_sweep_quick_grids_are_byte_identical_sharded() {
    // fig6 exercises all five schedulers (incl. the CGM baselines and
    // their polls counter) through the worker pipe; the α/ω sweep
    // exercises single-spec cells. fig6 additionally crosses the TCP
    // transport.
    let fig6_base =
        render_csv(&fig6::run_with(Mode::Quick, SEED, &opts(Shards::InProcess)).unwrap());
    let fig6_sharded =
        render_csv(&fig6::run_with(Mode::Quick, SEED, &opts(Shards::Workers(2))).unwrap());
    assert_eq!(fig6_base, fig6_sharded);
    let fig6_tcp =
        render_csv(&fig6::run_with(Mode::Quick, SEED, &tcp(opts(Shards::Workers(2)))).unwrap());
    assert_eq!(fig6_base, fig6_tcp);

    let params_base =
        render_csv(&params::run_with(Mode::Quick, SEED, &opts(Shards::InProcess)).unwrap());
    let params_sharded =
        render_csv(&params::run_with(Mode::Quick, SEED, &opts(Shards::Workers(2))).unwrap());
    assert_eq!(params_base, params_sharded);
}

#[test]
fn fault_regimes_are_byte_identical_across_shards_and_transports() {
    // The three simulated-world fault regimes cross the worker pipe and
    // the TCP transport carrying a fault block in the spec codec and a
    // fault summary in the report codec; every byte of every report must
    // match the in-process run for --shards 0/1/4.
    use besync_scenarios::codec::encode_report;
    use besync_scenarios::suite::by_name;
    let specs: Vec<_> = ["lossy_medium", "outage_medium", "crashy_huge"]
        .iter()
        .map(|n| by_name(n).expect("registered fault regime").quick())
        .collect();
    let reports = |o: &SweepOptions| -> Vec<String> {
        besync_sweep::sweep(&specs, o)
            .unwrap()
            .outcomes
            .iter()
            .map(|out| encode_report(&out.report))
            .collect()
    };
    let in_process = reports(&opts(Shards::InProcess));
    assert!(
        in_process
            .iter()
            .any(|r| r.contains("fault_lost_refreshes") && !r.contains("fault_lost_refreshes 0")),
        "lossy regime reported no losses"
    );
    for shards in [1u32, 4] {
        let piped = reports(&opts(Shards::Workers(shards)));
        assert_eq!(
            in_process, piped,
            "--shards {shards} fault-regime reports diverge over pipes"
        );
        let over_tcp = reports(&tcp(opts(Shards::Workers(shards))));
        assert_eq!(
            in_process, over_tcp,
            "--shards {shards} fault-regime reports diverge over TCP"
        );
    }
}

#[test]
fn fault_aware_regimes_are_byte_identical_across_shards_and_transports() {
    // The PR 10 regimes: the fault-aware retransmit scheduler (estimator
    // state, ack plumbing, `fault_aware` codec flag) and the first lossy
    // competitive split. Both must shard byte-identically — the
    // estimator folds acks in simulation order, so any dependence on
    // worker interleaving would show up here as a diverging report.
    use besync_scenarios::codec::encode_report;
    use besync_scenarios::suite::by_name;
    let specs: Vec<_> = ["lossy_aware_medium", "competitive_lossy"]
        .iter()
        .map(|n| by_name(n).expect("registered fault regime").quick())
        .collect();
    let reports = |o: &SweepOptions| -> Vec<String> {
        besync_sweep::sweep(&specs, o)
            .unwrap()
            .outcomes
            .iter()
            .map(|out| encode_report(&out.report))
            .collect()
    };
    let in_process = reports(&opts(Shards::InProcess));
    assert!(
        in_process
            .iter()
            .all(|r| r.contains("fault_lost_refreshes") && !r.contains("fault_lost_refreshes 0")),
        "both lossy regimes must report losses"
    );
    for shards in [1u32, 4] {
        let piped = reports(&opts(Shards::Workers(shards)));
        assert_eq!(
            in_process, piped,
            "--shards {shards} fault-aware reports diverge over pipes"
        );
        let over_tcp = reports(&tcp(opts(Shards::Workers(shards))));
        assert_eq!(
            in_process, over_tcp,
            "--shards {shards} fault-aware reports diverge over TCP"
        );
    }
}

#[test]
fn worker_killed_mid_grid_still_merges_byte_identically() {
    let in_process = fig4_in_process();
    // Every initial worker aborts upon *receiving* its 2nd spec — a
    // crash with one spec acknowledged and one in flight. The
    // supervisor must respawn (replacements don't inherit the hook) and
    // resubmit exactly the unacknowledged specs.
    let mut crashy = opts(Shards::Workers(3));
    crashy
        .worker_env
        .push((ABORT_ENV.to_string(), "2".to_string()));
    let merged = render_csv(&fig4::run_with(Mode::Quick, SEED, &crashy).unwrap());
    assert_eq!(
        in_process, merged,
        "a mid-grid worker crash changed the merged output"
    );
}

#[test]
fn worker_hung_mid_grid_is_deadlined_and_the_merge_is_unchanged() {
    let in_process = fig4_in_process();
    // Every initial worker hangs on its 1st spec with its I/O thread
    // still answering heartbeats — only the per-spec deadline can catch
    // it. The respawned replacements are clean and finish the grid.
    let mut hung = opts(Shards::Workers(2));
    hung.spec_deadline = Some(Duration::from_secs(1));
    hung.worker_env
        .push((FAULT_ENV.to_string(), "hang:1".to_string()));
    let merged = render_csv(&fig4::run_with(Mode::Quick, SEED, &hung).unwrap());
    assert_eq!(
        in_process, merged,
        "a deadline-killed hang changed the merged output"
    );
}

#[test]
fn all_workers_dead_degrades_to_in_process_and_the_grid_is_unchanged() {
    let in_process = fig4_in_process();
    // A worker command that can never speak the protocol (`cat` echoes
    // requests back) with a tiny respawn budget: every slot retires and
    // the grid must complete in-process — same bytes, not an error.
    let degraded = SweepOptions {
        shards: Shards::Workers(2),
        worker: WorkerSpawn::Command("cat".into(), Vec::new()),
        max_respawns: 1,
        ..opts(Shards::Workers(2))
    };
    let merged = render_csv(&fig4::run_with(Mode::Quick, SEED, &degraded).unwrap());
    assert_eq!(
        in_process, merged,
        "graceful degradation changed the merged output"
    );
}

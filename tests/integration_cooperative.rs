//! Cross-crate integration tests of the cooperative synchronization
//! system: the §5 protocol end to end, against the §3.3 ideal, over real
//! workload generators and the network substrate.

use besync::cache::FeedbackTargeting;
use besync::config::SystemConfig;
use besync::priority::{PolicyKind, RateEstimator};
use besync::{CoopSystem, IdealSystem};
use besync_data::Metric;
use besync_workloads::buoy::{self, BuoyConfig};
use besync_workloads::generators::{fig6_workload, random_walk_poisson, PoissonWorkloadOptions};
use besync_workloads::WorkloadSpec;

fn spec(sources: u32, n: u32, seed: u64) -> WorkloadSpec {
    random_walk_poisson(
        PoissonWorkloadOptions {
            sources,
            objects_per_source: n,
            rate_range: (0.05, 0.8),
            weight_range: (1.0, 1.0),
            fluctuating_weights: false,
        },
        seed,
    )
}

fn cfg(cache_bw: f64, source_bw: f64) -> SystemConfig {
    SystemConfig {
        metric: Metric::Staleness,
        cache_bandwidth_mean: cache_bw,
        source_bandwidth_mean: source_bw,
        warmup: 50.0,
        measure: 300.0,
        ..SystemConfig::default()
    }
}

#[test]
fn ideal_lower_bounds_the_pragmatic_algorithm() {
    for seed in [1, 2, 3] {
        for bw in [5.0, 20.0, 60.0] {
            let ideal = IdealSystem::new(cfg(bw, 10.0), spec(5, 10, seed)).run();
            let ours = CoopSystem::new(cfg(bw, 10.0), spec(5, 10, seed)).run();
            assert!(
                ours.mean_divergence() + 0.02 >= ideal.mean_divergence(),
                "seed {seed} bw {bw}: ours {} below ideal {}",
                ours.mean_divergence(),
                ideal.mean_divergence()
            );
        }
    }
}

#[test]
fn identical_workload_across_schedulers() {
    // Update sequences are driven by per-object RNG streams, so both
    // schedulers must observe exactly the same number of updates.
    let a = IdealSystem::new(cfg(10.0, 5.0), spec(4, 8, 9)).run();
    let b = CoopSystem::new(cfg(10.0, 5.0), spec(4, 8, 9)).run();
    assert_eq!(a.updates_processed, b.updates_processed);
}

#[test]
fn positive_feedback_avoids_flooding_under_bandwidth_cliff() {
    // Plentiful source bandwidth + starved cache link: negative-feedback
    // designs flood here; the §5 design must keep the queue bounded.
    let mut c = cfg(1.0, 100.0);
    c.measure = 500.0;
    let report = CoopSystem::new(c, spec(10, 10, 4)).run();
    assert!(
        report.max_cache_queue < 150,
        "cache queue peaked at {} — flooding",
        report.max_cache_queue
    );
    // Thresholds must have risen to throttle the sources.
    assert!(report.threshold_stats.mean() > 1.0);
}

#[test]
fn feedback_fills_surplus_bandwidth() {
    // Over-provisioned cache: feedback should flow and thresholds drop,
    // pushing refreshes through and divergence toward zero.
    let report = CoopSystem::new(cfg(500.0, 100.0), spec(5, 10, 5)).run();
    assert!(report.feedback_messages > 0);
    assert!(
        report.mean_divergence() < 0.1,
        "divergence {} despite surplus",
        report.mean_divergence()
    );
}

#[test]
fn fluctuating_bandwidth_is_tracked() {
    let mut fluct = cfg(15.0, 8.0);
    fluct.bandwidth_change_rate = 0.25;
    let mut fixed = cfg(15.0, 8.0);
    fixed.bandwidth_change_rate = 0.0;
    let r_fluct = CoopSystem::new(fluct, spec(5, 10, 6)).run();
    let r_fixed = CoopSystem::new(fixed, spec(5, 10, 6)).run();
    // Adaptivity: fluctuation should cost something but not break the
    // system (divergence within 3x of the fixed-bandwidth run).
    assert!(r_fluct.mean_divergence() <= (r_fixed.mean_divergence() * 3.0).max(0.15));
}

#[test]
fn weighted_objects_get_preferential_treatment() {
    // Two halves with equal rates but 10× weights: the heavy half must
    // end up fresher.
    let mut s = spec(2, 20, 7);
    for obj in s.layout.all_objects() {
        let w = if obj.0 % 2 == 0 { 10.0 } else { 1.0 };
        s.weights[obj.index()] = besync_data::WeightProfile::constant(w);
    }
    let c = cfg(4.0, 2.0); // scarce: choices matter
    let report = CoopSystem::new(c, s).run();
    // Under weight-blind treatment staleness is independent of weight, so
    // the weighted mean would be E[w] = 5.5 times the unweighted mean.
    let uniform_treatment = 5.5 * report.divergence.mean_unweighted;
    assert!(
        report.divergence.mean_weighted < uniform_treatment,
        "weighted {} vs uniform-treatment bound {}",
        report.divergence.mean_weighted,
        uniform_treatment
    );
}

#[test]
fn all_feedback_targeting_policies_work() {
    for targeting in [
        FeedbackTargeting::HighestThreshold,
        FeedbackTargeting::RoundRobin,
        FeedbackTargeting::Random,
    ] {
        let mut c = cfg(20.0, 10.0);
        c.feedback_targeting = targeting;
        let r = CoopSystem::new(c, spec(5, 10, 8)).run();
        assert!(r.mean_divergence().is_finite());
        assert!(r.refreshes_delivered > 0);
    }
}

#[test]
fn closed_form_policy_with_estimators() {
    for estimator in [
        RateEstimator::Known,
        RateEstimator::LongRun,
        RateEstimator::SinceRefresh,
    ] {
        let mut c = cfg(15.0, 8.0);
        c.policy = PolicyKind::PoissonClosedForm;
        c.estimator = estimator;
        let r = CoopSystem::new(c, fig6_workload(5, 10, 11)).run();
        assert!(
            r.mean_divergence() < 0.9,
            "{estimator:?}: divergence {}",
            r.mean_divergence()
        );
    }
}

#[test]
fn scripted_buoy_workload_runs_end_to_end() {
    let bcfg = BuoyConfig::quick();
    let s = buoy::workload(&bcfg, 12);
    let c = SystemConfig {
        metric: Metric::abs_deviation(),
        cache_bandwidth_mean: 10.0 / 60.0,
        source_bandwidth_mean: 1.0,
        warmup: 0.2 * bcfg.duration,
        measure: 0.8 * bcfg.duration,
        ..SystemConfig::default()
    };
    let r = CoopSystem::new(c, s).run();
    assert!(r.updates_processed > 0);
    assert!(r.mean_divergence() >= 0.0);
    // Wind values live in [0, 10]; deviation can't exceed that.
    assert!(r.mean_divergence() <= 10.0);
}

#[test]
fn bound_policy_runs_in_both_systems() {
    let s = spec(3, 5, 13);
    let rates: Vec<f64> = s.rates.clone();
    let mut c = cfg(5.0, 3.0);
    c.policy = PolicyKind::Bound;
    c.bound_rates = Some(rates.clone());
    let coop = CoopSystem::new(c.clone(), s.clone()).run();
    let ideal = IdealSystem::new(c, s).run();
    assert!(coop.refreshes_sent > 0);
    assert!(ideal.refreshes_sent > 0);
}

#[test]
fn lag_metric_accounts_queued_snapshots() {
    // Tight cache link → messages queue → snapshots arrive stale → lag
    // divergence stays positive even right after refreshes.
    let mut c = cfg(2.0, 50.0);
    c.metric = Metric::Lag;
    let r = CoopSystem::new(c, spec(5, 10, 14)).run();
    assert!(r.mean_queue_wait >= 0.0);
    assert!(r.divergence.mean_unweighted > 0.0);
}

//! Scheduler-port equivalence goldens for `IdealSystem` and the CGM
//! baselines.
//!
//! PR 2 moved both off the generic `EventQueue<Ev>` + `LazyMaxHeap` onto
//! the `CalendarQueue` + unified indexed heap that `CoopSystem` already
//! uses. The constants below are the exact `RunReport` counters of the
//! **old `EventQueue`-backed implementations**, recorded immediately
//! before the port (same seeds, same configs). The port is required to be
//! bit-identical: any divergence here means the new schedulers do not
//! replay the old trajectories and the paper's figures moved.
//!
//! To regenerate after an *intentional* trajectory change, run with
//! `GOLDEN_PRINT=1 cargo test --test scheduler_equivalence -- --nocapture`
//! and say so in the commit message.
//!
//! The ideal/CGM configurations live once in the shared scenario
//! registry (`besync_scenarios::goldens()`, the `equiv_*` names) and are
//! referenced here by name, so these tests double as a pin that the
//! declarative scenario lowering reproduces the hand-rolled
//! constructions bit for bit. (The §7 competitive goldens below keep
//! their bespoke construction: their conflicted cache-vs-source weight
//! setup is deliberately outside the declarative spec.)

use besync::RunReport;
use besync_scenarios::by_name;

struct Golden {
    updates_processed: u64,
    refreshes_sent: u64,
    polls_sent: u64,
    mean_divergence: f64,
}

fn check(name: &str, report: &RunReport, want: &Golden) {
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!(
            "{name}: updates_processed: {}, refreshes_sent: {}, polls_sent: {}, \
             mean_divergence: {:.12e}",
            report.updates_processed,
            report.refreshes_sent,
            report.polls_sent,
            report.mean_divergence(),
        );
        return;
    }
    assert_eq!(
        report.updates_processed, want.updates_processed,
        "{name}: updates_processed"
    );
    assert_eq!(
        report.refreshes_sent, want.refreshes_sent,
        "{name}: refreshes_sent"
    );
    assert_eq!(report.polls_sent, want.polls_sent, "{name}: polls_sent");
    assert!(
        (report.mean_divergence() - want.mean_divergence).abs() < 1e-9,
        "{name}: mean_divergence {:.12e} != {:.12e}",
        report.mean_divergence(),
        want.mean_divergence
    );
}

fn run_named(name: &str) -> RunReport {
    by_name(name).expect("registered golden scenario").run()
}

#[test]
fn ideal_staleness_area() {
    let report = run_named("equiv_ideal_staleness_area");
    check(
        "ideal_staleness_area",
        &report,
        &Golden {
            updates_processed: 7289,
            refreshes_sent: 3400,
            polls_sent: 0,
            mean_divergence: 0.3868146125482,
        },
    );
}

#[test]
fn ideal_deviation_poisson() {
    let report = run_named("equiv_ideal_deviation_poisson");
    check(
        "ideal_deviation_poisson",
        &report,
        &Golden {
            updates_processed: 7431,
            refreshes_sent: 3400,
            polls_sent: 0,
            mean_divergence: 0.3474099768857,
        },
    );
}

#[test]
fn ideal_lag_simple() {
    let report = run_named("equiv_ideal_lag_simple");
    check(
        "ideal_lag_simple",
        &report,
        &Golden {
            updates_processed: 7198,
            refreshes_sent: 3399,
            polls_sent: 0,
            mean_divergence: 0.6352161554723,
        },
    );
}

#[test]
fn cgm_ideal_cache_based() {
    let report = run_named("equiv_cgm_ideal");
    check(
        "cgm_ideal_cache_based",
        &report,
        &Golden {
            updates_processed: 6317,
            refreshes_sent: 6243,
            polls_sent: 0,
            mean_divergence: 0.2873052229401,
        },
    );
}

#[test]
fn cgm1() {
    let report = run_named("equiv_cgm1");
    check(
        "cgm1",
        &report,
        &Golden {
            updates_processed: 6700,
            refreshes_sent: 3103,
            polls_sent: 3103,
            mean_divergence: 0.4538135106601,
        },
    );
}

#[test]
fn cgm2() {
    let report = run_named("equiv_cgm2");
    check(
        "cgm2",
        &report,
        &Golden {
            updates_processed: 6125,
            refreshes_sent: 3116,
            polls_sent: 3116,
            mean_divergence: 0.4252423568813,
        },
    );
}

mod competitive_goldens {
    use besync::cache::partition::{BandwidthPartition, SharePolicy};
    use besync::competitive::{CompetitiveConfig, CompetitiveReport, CompetitiveSystem};
    use besync::config::SystemConfig;
    use besync_data::{Metric, WeightProfile};
    use besync_workloads::generators::{random_walk_poisson, PoissonWorkloadOptions};
    use besync_workloads::WorkloadSpec;

    struct CompetitiveGolden {
        threshold_refreshes: u64,
        source_refreshes: u64,
        feedback_messages: u64,
        cache_objective: f64,
        source_objective: f64,
    }

    fn check(name: &str, report: &CompetitiveReport, want: &CompetitiveGolden) {
        if std::env::var_os("GOLDEN_PRINT").is_some() {
            println!(
                "{name}: threshold_refreshes: {}, source_refreshes: {}, \
                 feedback_messages: {}, cache_objective: {:.12e}, source_objective: {:.12e}",
                report.threshold_refreshes,
                report.source_refreshes,
                report.feedback_messages,
                report.cache_objective,
                report.source_objective,
            );
            return;
        }
        assert_eq!(
            report.threshold_refreshes, want.threshold_refreshes,
            "{name}: threshold_refreshes"
        );
        assert_eq!(
            report.source_refreshes, want.source_refreshes,
            "{name}: source_refreshes"
        );
        assert_eq!(
            report.feedback_messages, want.feedback_messages,
            "{name}: feedback_messages"
        );
        assert!(
            (report.cache_objective - want.cache_objective).abs() < 1e-9,
            "{name}: cache_objective {:.12e} != {:.12e}",
            report.cache_objective,
            want.cache_objective
        );
        assert!(
            (report.source_objective - want.source_objective).abs() < 1e-9,
            "{name}: source_objective {:.12e} != {:.12e}",
            report.source_objective,
            want.source_objective
        );
    }

    /// Cache wants the first half of each source's objects; sources want
    /// the second half (the conflicted §7 setup).
    fn conflicted(seed: u64) -> (WorkloadSpec, Vec<WeightProfile>) {
        let mut spec = random_walk_poisson(
            PoissonWorkloadOptions {
                sources: 6,
                objects_per_source: 12,
                rate_range: (0.1, 0.8),
                weight_range: (1.0, 1.0),
                fluctuating_weights: false,
            },
            seed,
        );
        let n = spec.layout.objects_per_source();
        let mut source_weights = Vec::new();
        for obj in spec.layout.all_objects() {
            let local = obj.0 % n;
            let cache_w = if local < n / 2 { 10.0 } else { 1.0 };
            let source_w = if local < n / 2 { 1.0 } else { 10.0 };
            spec.weights[obj.index()] = WeightProfile::constant(cache_w);
            source_weights.push(WeightProfile::constant(source_w));
        }
        (spec, source_weights)
    }

    fn run_with(seed: u64, psi: f64, policy: SharePolicy) -> CompetitiveReport {
        let (spec, source_weights) = conflicted(seed);
        CompetitiveSystem::new(
            CompetitiveConfig {
                base: SystemConfig {
                    metric: Metric::Staleness,
                    cache_bandwidth_mean: 12.0,
                    source_bandwidth_mean: 5.0,
                    warmup: 30.0,
                    measure: 150.0,
                    ..SystemConfig::default()
                },
                source_weights,
                partition: BandwidthPartition::new(psi, policy),
            },
            spec,
        )
        .run()
    }

    #[test]
    fn competitive_equal_share() {
        let report = run_with(71, 0.5, SharePolicy::EqualShare);
        check(
            "competitive_equal_share",
            &report,
            &CompetitiveGolden {
                threshold_refreshes: 996,
                source_refreshes: 1080,
                feedback_messages: 73,
                cache_objective: 2.840123045792,
                source_objective: 2.363838669585,
            },
        );
    }

    #[test]
    fn competitive_piggyback() {
        let report = run_with(72, 0.5, SharePolicy::ProportionalToValue);
        check(
            "competitive_piggyback",
            &report,
            &CompetitiveGolden {
                threshold_refreshes: 1088,
                source_refreshes: 990,
                feedback_messages: 74,
                cache_objective: 3.077656928409,
                source_objective: 2.780826431438,
            },
        );
    }

    #[test]
    fn competitive_psi_zero() {
        let report = run_with(73, 0.0, SharePolicy::EqualShare);
        check(
            "competitive_psi_zero",
            &report,
            &CompetitiveGolden {
                threshold_refreshes: 2028,
                source_refreshes: 0,
                feedback_messages: 132,
                cache_objective: 2.235257101532,
                source_objective: 3.629331228980,
            },
        );
    }
}

//! Structural integration tests of the experiment harness: every
//! table/figure generator produces well-formed rows with the paper's
//! qualitative shape at quick scale, and CSV emission round-trips.

use besync_experiments::output::{render_csv, render_table, Row};
use besync_experiments::{bounds, competitive, fig4, fig5, fig6, params, sampling, validate, Mode};

#[test]
fn fig6_reproduces_paper_ordering() {
    let rows = fig6::run(Mode::Quick, 101);
    assert!(!rows.is_empty());
    for r in &rows {
        // All five curves present and ordered: cooperation ≤ cache-based.
        for v in [r.ideal_coop, r.ours, r.ideal_cache, r.cgm1, r.cgm2] {
            assert!((0.0..=1.0).contains(&v), "staleness out of range: {v}");
        }
        assert!(r.ideal_coop <= r.ours + 0.05);
        assert!(r.ours <= r.cgm1.max(r.cgm2) + 0.02);
    }
    let csv = render_csv(&rows);
    assert!(csv.starts_with("m,n,bw_fraction"));
    assert_eq!(csv.lines().count(), rows.len() + 1);
}

#[test]
fn fig4_ratio_compresses_toward_one_at_high_divergence() {
    let rows = fig4::run(Mode::Quick, 102);
    let finite: Vec<&fig4::Fig4Row> = rows.iter().filter(|r| r.ratio.is_finite()).collect();
    assert!(finite.len() >= 6, "too few informative cells");
    let summary = fig4::summarize(&rows);
    assert!(!summary.is_empty());
    // For each metric with all three bands present, high-band ratios are
    // no worse than low-band ones (the paper's key shape).
    for metric in ["staleness", "lag", "deviation"] {
        let low = summary.iter().find(|(k, _)| k == &format!("{metric}/low"));
        let high = summary.iter().find(|(k, _)| k == &format!("{metric}/high"));
        if let (Some((_, lo)), Some((_, hi))) = (low, high) {
            assert!(
                hi <= lo,
                "{metric}: high-divergence median ratio {hi} should not exceed low {lo}"
            );
        }
    }
}

#[test]
fn fig5_table_is_well_formed() {
    let rows = fig5::run(Mode::Quick, 103);
    assert_eq!(rows.len(), 8); // 4 bandwidths × 2 regimes at quick scale
    for r in &rows {
        assert!(r.ideal >= 0.0 && r.ours >= 0.0);
        assert!(r.ideal <= 10.0 && r.ours <= 10.0); // wind range
    }
    let table = render_table(&rows);
    assert!(table.contains("fluctuating"));
}

#[test]
fn validation_tables_match_paper_direction() {
    let uniform = validate::run_uniform(Mode::Quick, 104);
    for r in &uniform {
        assert!(
            r.increase_pct.abs() < 30.0,
            "uniform: policies should be close, got {:+.1}% ({} n={})",
            r.increase_pct,
            r.metric,
            r.n
        );
    }
    let skew = validate::run_skew(Mode::Quick, 104);
    for r in &skew {
        assert!(
            r.increase_pct > 10.0,
            "skew: simple should lose clearly, got {:+.1}% ({})",
            r.increase_pct,
            r.metric
        );
    }
}

#[test]
fn param_sweep_paper_setting_is_competitive() {
    // The paper's claim is robustness, not a sharp optimum: α=1.1, ω=10
    // must be within a whisker of the best cell, and the aggressive
    // corner (large α with small ω) must be clearly worse.
    let rows = params::run(Mode::Quick, 105);
    let best = rows
        .iter()
        .map(|r| r.divergence)
        .fold(f64::INFINITY, f64::min);
    let paper = rows
        .iter()
        .find(|r| r.alpha == 1.1 && r.omega == 10.0)
        .expect("grid includes the paper's setting");
    assert!(
        paper.divergence <= best * 1.15,
        "paper setting {} vs best {best}",
        paper.divergence
    );
    let worst = rows
        .iter()
        .max_by(|a, b| a.divergence.total_cmp(&b.divergence))
        .unwrap();
    assert!(
        worst.alpha >= 1.5 || worst.omega <= 2.0,
        "worst cell should be an aggressive corner, got α={} ω={}",
        worst.alpha,
        worst.omega
    );
    assert!(worst.divergence > best);
}

#[test]
fn bounds_experiment_validates_section9() {
    let rows = bounds::run(Mode::Quick, 106);
    let names: Vec<&str> = rows.iter().map(|r| r.policy).collect();
    assert!(names.contains(&"analytic_optimum"));
    assert!(names.contains(&"bound_priority"));
    let ours = rows.iter().find(|r| r.policy == "bound_priority").unwrap();
    assert!(ours.vs_optimal < 1.1);
}

#[test]
fn sampling_experiment_shows_interval_tradeoff() {
    let rows = sampling::run(Mode::Quick, 107);
    assert!(rows.len() >= 4);
    assert!(rows[0].mean_rel_error < rows.last().unwrap().mean_rel_error);
}

#[test]
fn competitive_experiment_produces_all_options() {
    let rows = competitive::run(Mode::Quick, 108);
    for option in ["equal_share", "per_object", "piggyback"] {
        assert!(
            rows.iter().any(|r| r.option == option),
            "missing option {option}"
        );
    }
    // Ψ=0 rows exist and spend nothing on source priorities.
    for r in rows.iter().filter(|r| r.psi == 0.0) {
        assert_eq!(r.source_refreshes, 0, "option {}", r.option);
    }
}

#[test]
fn experiment_rows_are_deterministic_per_seed() {
    let a = fig6::run(Mode::Quick, 109);
    let b = fig6::run(Mode::Quick, 109);
    let fields_a: Vec<Vec<String>> = a.iter().map(|r| r.fields()).collect();
    let fields_b: Vec<Vec<String>> = b.iter().map(|r| r.fields()).collect();
    assert_eq!(fields_a, fields_b);
    let c = fig6::run(Mode::Quick, 110);
    let fields_c: Vec<Vec<String>> = c.iter().map(|r| r.fields()).collect();
    assert_ne!(fields_a, fields_c, "different seeds should differ");
}

//! Integration tests pitting the cooperative systems against the CGM
//! baselines (the paper's §6.3 claims) and exercising the competitive
//! extension (§7) end to end.

use besync::cache::partition::{BandwidthPartition, SharePolicy};
use besync::competitive::{CompetitiveConfig, CompetitiveSystem};
use besync::config::SystemConfig;
use besync::priority::{PolicyKind, RateEstimator};
use besync::{CoopSystem, IdealSystem};
use besync_baselines::freshness;
use besync_baselines::{CgmConfig, CgmSystem, CgmVariant};
use besync_data::{Metric, WeightProfile};
use besync_workloads::generators::fig6_workload;

fn coop_cfg(bandwidth: f64, policy: PolicyKind, estimator: RateEstimator) -> SystemConfig {
    SystemConfig {
        metric: Metric::Staleness,
        policy,
        estimator,
        cache_bandwidth_mean: bandwidth,
        source_bandwidth_mean: 1e9,
        warmup: 60.0,
        measure: 300.0,
        ..SystemConfig::default()
    }
}

fn cgm_cfg(bandwidth: f64, variant: CgmVariant) -> CgmConfig {
    CgmConfig {
        variant,
        cache_bandwidth_mean: bandwidth,
        warmup: 60.0,
        measure: 300.0,
        ..CgmConfig::default()
    }
}

#[test]
fn cooperation_beats_cache_driven_scheduling() {
    // The paper's headline claim across the mid-range of Figure 6.
    for fraction in [0.3, 0.5, 0.7] {
        let m = 10u32;
        let n = 10u32;
        let bandwidth = fraction * (m * n) as f64;
        let ours = CoopSystem::new(
            coop_cfg(
                bandwidth,
                PolicyKind::PoissonClosedForm,
                RateEstimator::LongRun,
            ),
            fig6_workload(m, n, 21),
        )
        .run();
        let cgm1 = CgmSystem::new(
            cgm_cfg(bandwidth, CgmVariant::Cgm1),
            fig6_workload(m, n, 21),
        )
        .run();
        let cgm2 = CgmSystem::new(
            cgm_cfg(bandwidth, CgmVariant::Cgm2),
            fig6_workload(m, n, 21),
        )
        .run();
        assert!(
            ours.mean_divergence() < cgm1.mean_divergence(),
            "f={fraction}: ours {} vs CGM1 {}",
            ours.mean_divergence(),
            cgm1.mean_divergence()
        );
        assert!(
            ours.mean_divergence() < cgm2.mean_divergence(),
            "f={fraction}: ours {} vs CGM2 {}",
            ours.mean_divergence(),
            cgm2.mean_divergence()
        );
    }
}

#[test]
fn ideal_cooperative_beats_ideal_cache_based() {
    // Even granting CGM free polling and oracle rates, cooperation wins:
    // sources know *when* updates happen, the cache can only schedule by
    // rate.
    for fraction in [0.3, 0.6] {
        let m = 10u32;
        let n = 10u32;
        let bandwidth = fraction * (m * n) as f64;
        let coop = IdealSystem::new(
            coop_cfg(
                bandwidth,
                PolicyKind::PoissonClosedForm,
                RateEstimator::Known,
            ),
            fig6_workload(m, n, 22),
        )
        .run();
        let cache = CgmSystem::new(
            cgm_cfg(bandwidth, CgmVariant::IdealCacheBased),
            fig6_workload(m, n, 22),
        )
        .run();
        assert!(
            coop.mean_divergence() < cache.mean_divergence(),
            "f={fraction}: ideal coop {} vs ideal cache {}",
            coop.mean_divergence(),
            cache.mean_divergence()
        );
    }
}

#[test]
fn cgm_budget_is_respected() {
    let m = 10u32;
    let n = 10u32;
    let bandwidth = 30.0;
    let horizon = 360.0;
    for variant in [
        CgmVariant::IdealCacheBased,
        CgmVariant::Cgm1,
        CgmVariant::Cgm2,
    ] {
        let r = CgmSystem::new(cgm_cfg(bandwidth, variant), fig6_workload(m, n, 23)).run();
        let cost = variant.cost_per_refresh();
        let used = r.refreshes_sent as f64 * cost;
        assert!(
            used <= bandwidth * horizon * 1.05 + 10.0,
            "{}: used {used} units over {horizon}s at capacity {bandwidth}",
            variant.name()
        );
    }
}

#[test]
fn freshness_allocation_agrees_with_simulation() {
    // The analytic freshness model predicts simulated staleness well for
    // the ideal cache-based scheduler: staleness ≈ 1 − mean freshness.
    let m = 10u32;
    let n = 10u32;
    let spec = fig6_workload(m, n, 24);
    let bandwidth = 50.0;
    let freqs = freshness::allocate(&spec.rates, bandwidth);
    let predicted_staleness =
        1.0 - freshness::total_freshness(&spec.rates, &freqs) / (m * n) as f64;
    let mut c = cgm_cfg(bandwidth, CgmVariant::IdealCacheBased);
    c.measure = 600.0;
    let r = CgmSystem::new(c, spec).run();
    let simulated = r.mean_divergence();
    assert!(
        (simulated - predicted_staleness).abs() < 0.08,
        "simulated {simulated} vs analytic {predicted_staleness}"
    );
}

#[test]
fn competitive_psi_sweep_is_monotone_for_sources() {
    let m = 6u32;
    let n = 10u32;
    let mut results = Vec::new();
    for &psi in &[0.0, 0.3, 0.6] {
        let mut spec = fig6_workload(m, n, 25);
        let mut source_weights = Vec::new();
        for obj in spec.layout.all_objects() {
            let local = obj.0 % n;
            let (cw, sw) = if local < n / 2 {
                (10.0, 1.0)
            } else {
                (1.0, 10.0)
            };
            spec.weights[obj.index()] = WeightProfile::constant(cw);
            source_weights.push(WeightProfile::constant(sw));
        }
        let base = SystemConfig {
            metric: Metric::Staleness,
            cache_bandwidth_mean: 0.25 * (m * n) as f64,
            source_bandwidth_mean: 5.0,
            warmup: 50.0,
            measure: 300.0,
            ..SystemConfig::default()
        };
        let r = CompetitiveSystem::new(
            CompetitiveConfig {
                base,
                source_weights,
                partition: BandwidthPartition::new(psi, SharePolicy::EqualShare),
            },
            spec,
        )
        .run();
        results.push((psi, r));
    }
    // Source objective improves as Ψ grows.
    assert!(
        results[2].1.source_objective < results[0].1.source_objective,
        "psi=0.6 source objective {} vs psi=0 {}",
        results[2].1.source_objective,
        results[0].1.source_objective
    );
    // And sources actually used their allocations.
    assert!(results[2].1.source_refreshes > results[1].1.source_refreshes);
}

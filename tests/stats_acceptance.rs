//! Distribution-level acceptance gates against `STATS_baseline.txt`.
//!
//! These are the tier-2 companions to the bit-identity goldens in
//! `golden_report.rs`: instead of demanding one trajectory match
//! byte-for-byte, each test re-runs a scenario across a set of derived
//! seeds and z-checks the metric moments (mean divergence, updates,
//! refreshes) against the moments stored in the baseline. An
//! intentional numerics change (solver swap, resampled randomness) is
//! expected to move individual trajectories but *not* these
//! distributions — that is exactly the claim this file enforces.
//!
//! Two scales:
//!
//! - quick smoke (not ignored): 8 seeds at `--quick` scale per
//!   scenario, loose tier. Cheap enough for the ordinary `cargo test`
//!   run; catches gross physics breakage.
//! - full (`#[ignore]`d): 32 seeds at paper scale, standard tier. Run
//!   in release by the CI `stats-acceptance` job and by hand before
//!   accepting any intentional numerics change:
//!
//!   ```text
//!   cargo test --release --test stats_acceptance -- --ignored
//!   ```
//!
//! Re-record after a *deliberate, statistically justified* physics
//! change with:
//!
//! ```text
//! besync-bench verify --accept stats --seeds 8  --quick --record
//! besync-bench verify --accept stats --seeds 32 --record
//! ```

use besync_scenarios::by_name;
use besync_sweep::SweepOptions;
use besync_verify::{check_scenario, collect, StatBaseline, Tier};

/// Same default set as `besync-bench verify`: the headline coop
/// scenario plus one per figure-regeneration scheduler.
const QUICK_SEEDS: u32 = 8;
const FULL_SEEDS: u32 = 32;

fn check(name: &str, seeds: u32, quick: bool, tier: Tier) {
    let base = by_name(name).unwrap_or_else(|| panic!("scenario `{name}` not registered"));
    let stats = collect(&base, seeds, quick, &SweepOptions::default())
        .unwrap_or_else(|e| panic!("sweep for `{name}` failed: {e}"));
    let baseline = StatBaseline::load("STATS_baseline.txt".as_ref())
        .unwrap_or_else(|e| panic!("{e} — record with `besync-bench verify --record`"));
    let entry = baseline.get(name, quick).unwrap_or_else(|| {
        panic!("no `{name}` quick={quick} entry in STATS_baseline.txt — record one")
    });
    let reports = check_scenario(&stats, entry, tier);
    assert!(!reports.is_empty(), "no metrics compared for `{name}`");
    let failures: Vec<String> = reports
        .iter()
        .filter(|r| !r.pass)
        .map(|r| format!("{}/{}: {}", r.scenario, r.metric, r.detail))
        .collect();
    assert!(
        failures.is_empty(),
        "statistical acceptance failed for `{name}` at tier {}:\n  {}",
        tier.name(),
        failures.join("\n  ")
    );
}

// Quick smoke: loose tier because 8 seeds give noisy variance
// estimates; the point is catching order-of-magnitude breakage in the
// default `cargo test` pass, not adjudicating solver swaps.

#[test]
fn quick_smoke_medium() {
    check("medium", QUICK_SEEDS, true, Tier::Loose);
}

#[test]
fn quick_smoke_ideal_medium() {
    check("ideal_medium", QUICK_SEEDS, true, Tier::Loose);
}

#[test]
fn quick_smoke_cgm1_medium() {
    check("cgm1_medium", QUICK_SEEDS, true, Tier::Loose);
}

#[test]
fn quick_smoke_cgm2_medium() {
    check("cgm2_medium", QUICK_SEEDS, true, Tier::Loose);
}

// Simulated-world fault regimes: the fault schedules derive from the
// per-variant sim seed, so every derived seed sees different loss
// decisions and outage windows — the moments cover the fault physics,
// not one fault trace. (`crashy_huge` is excluded: 131k-object runs
// are bench/CI-smoke material, not a per-`cargo test` distribution.)

#[test]
fn quick_smoke_lossy_medium() {
    check("lossy_medium", QUICK_SEEDS, true, Tier::Loose);
}

#[test]
fn quick_smoke_outage_medium() {
    check("outage_medium", QUICK_SEEDS, true, Tier::Loose);
}

// PR 10 regimes: the fault-aware retransmit scheduler (delivery-ack
// loss estimator repricing quotes) and the first lossy competitive
// split. Their moments gate the estimator physics the same way
// lossy_medium gates the plain loss lane.

#[test]
fn quick_smoke_lossy_aware_medium() {
    check("lossy_aware_medium", QUICK_SEEDS, true, Tier::Loose);
}

#[test]
fn quick_smoke_competitive_lossy() {
    check("competitive_lossy", QUICK_SEEDS, true, Tier::Loose);
}

// Full scale: the actual acceptance bar for numerics changes. Ignored
// by default — 32 paper-scale runs per scenario are release-build
// work; the CI `stats-acceptance` job runs them with `--release`.

#[test]
#[ignore = "full-scale: run with --release (CI stats-acceptance job)"]
fn full_scale_medium() {
    check("medium", FULL_SEEDS, false, Tier::Standard);
}

#[test]
#[ignore = "full-scale: run with --release (CI stats-acceptance job)"]
fn full_scale_ideal_medium() {
    check("ideal_medium", FULL_SEEDS, false, Tier::Standard);
}

#[test]
#[ignore = "full-scale: run with --release (CI stats-acceptance job)"]
fn full_scale_cgm1_medium() {
    check("cgm1_medium", FULL_SEEDS, false, Tier::Standard);
}

#[test]
#[ignore = "full-scale: run with --release (CI stats-acceptance job)"]
fn full_scale_cgm2_medium() {
    check("cgm2_medium", FULL_SEEDS, false, Tier::Standard);
}

#[test]
#[ignore = "full-scale: run with --release (CI stats-acceptance job)"]
fn full_scale_lossy_medium() {
    check("lossy_medium", FULL_SEEDS, false, Tier::Standard);
}

#[test]
#[ignore = "full-scale: run with --release (CI stats-acceptance job)"]
fn full_scale_outage_medium() {
    check("outage_medium", FULL_SEEDS, false, Tier::Standard);
}

#[test]
#[ignore = "full-scale: run with --release (CI stats-acceptance job)"]
fn full_scale_lossy_aware_medium() {
    check("lossy_aware_medium", FULL_SEEDS, false, Tier::Standard);
}

#[test]
#[ignore = "full-scale: run with --release (CI stats-acceptance job)"]
fn full_scale_competitive_lossy() {
    check("competitive_lossy", FULL_SEEDS, false, Tier::Standard);
}

//! Golden `RunReport` snapshots for two fixed configurations.
//!
//! The hot path is periodically refactored for speed; these tests pin the
//! *exact* counters and (to 1e-9) the mean divergence of two seeded runs,
//! so any optimization that silently perturbs event ordering — a changed
//! heap tie-break, a reordered tick phase, a different RNG stream — fails
//! loudly here instead of drifting the paper's figures.
//!
//! If a change is *supposed* to alter trajectories (a protocol fix, a new
//! policy default), regenerate the constants with:
//! `cargo test --test golden_report -- --nocapture` after setting
//! `GOLDEN_PRINT=1`, and say so in the commit message.

use besync::config::SystemConfig;
use besync::priority::PolicyKind;
use besync::system::CoopSystem;
use besync::RunReport;
use besync_data::Metric;
use besync_workloads::generators::{random_walk_poisson, PoissonWorkloadOptions};

struct Golden {
    updates_processed: u64,
    refreshes_sent: u64,
    refreshes_delivered: u64,
    feedback_messages: u64,
    max_cache_queue: usize,
    mean_divergence: f64,
}

fn check(name: &str, report: &RunReport, want: &Golden) {
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!(
            "{name}: updates_processed: {}, refreshes_sent: {}, refreshes_delivered: {}, \
             feedback_messages: {}, max_cache_queue: {}, mean_divergence: {:.12e}",
            report.updates_processed,
            report.refreshes_sent,
            report.refreshes_delivered,
            report.feedback_messages,
            report.max_cache_queue,
            report.mean_divergence(),
        );
        return;
    }
    assert_eq!(
        report.updates_processed, want.updates_processed,
        "{name}: updates_processed"
    );
    assert_eq!(
        report.refreshes_sent, want.refreshes_sent,
        "{name}: refreshes_sent"
    );
    assert_eq!(
        report.refreshes_delivered, want.refreshes_delivered,
        "{name}: refreshes_delivered"
    );
    assert_eq!(
        report.feedback_messages, want.feedback_messages,
        "{name}: feedback_messages"
    );
    assert_eq!(
        report.max_cache_queue, want.max_cache_queue,
        "{name}: max_cache_queue"
    );
    assert!(
        (report.mean_divergence() - want.mean_divergence).abs() < 1e-9,
        "{name}: mean_divergence {:.12e} != {:.12e}",
        report.mean_divergence(),
        want.mean_divergence
    );
}

/// Staleness metric, Area policy, moderate contention.
#[test]
fn golden_staleness_area() {
    let spec = random_walk_poisson(
        PoissonWorkloadOptions {
            sources: 4,
            objects_per_source: 25,
            rate_range: (0.05, 0.6),
            weight_range: (1.0, 3.0),
            fluctuating_weights: false,
        },
        7777,
    );
    let cfg = SystemConfig {
        metric: Metric::Staleness,
        policy: PolicyKind::Area,
        cache_bandwidth_mean: 15.0,
        source_bandwidth_mean: 4.0,
        warmup: 25.0,
        measure: 200.0,
        ..SystemConfig::default()
    };
    let report = CoopSystem::new(cfg, spec).run();
    check(
        "staleness_area",
        &report,
        &Golden {
            updates_processed: 6928,
            refreshes_sent: 3201,
            refreshes_delivered: 3201,
            feedback_messages: 169,
            max_cache_queue: 23,
            mean_divergence: 0.405039571852,
        },
    );
}

/// Value-deviation metric, Poisson closed-form policy, fluctuating
/// weights, tighter bandwidth.
#[test]
fn golden_deviation_poisson() {
    let spec = random_walk_poisson(
        PoissonWorkloadOptions {
            sources: 6,
            objects_per_source: 10,
            rate_range: (0.1, 1.0),
            weight_range: (1.0, 5.0),
            fluctuating_weights: true,
        },
        4242,
    );
    let cfg = SystemConfig {
        metric: Metric::abs_deviation(),
        policy: PolicyKind::PoissonClosedForm,
        cache_bandwidth_mean: 8.0,
        source_bandwidth_mean: 3.0,
        warmup: 20.0,
        measure: 150.0,
        ..SystemConfig::default()
    };
    let report = CoopSystem::new(cfg, spec).run();
    check(
        "deviation_poisson",
        &report,
        &Golden {
            updates_processed: 5947,
            refreshes_sent: 1277,
            refreshes_delivered: 1277,
            feedback_messages: 83,
            max_cache_queue: 20,
            mean_divergence: 0.8506841756691,
        },
    );
}

//! Golden `RunReport` snapshots for two fixed configurations.
//!
//! The hot path is periodically refactored for speed; these tests pin the
//! *exact* counters and (to 1e-9) the mean divergence of two seeded runs,
//! so any optimization that silently perturbs event ordering — a changed
//! heap tie-break, a reordered tick phase, a different RNG stream — fails
//! loudly here instead of drifting the paper's figures.
//!
//! If a change is *supposed* to alter trajectories (a protocol fix, a new
//! policy default), regenerate the constants with:
//! `cargo test --test golden_report -- --nocapture` after setting
//! `GOLDEN_PRINT=1`, and say so in the commit message.
//!
//! The configurations themselves live in the shared scenario registry
//! (`besync_scenarios::goldens()`) and are referenced here by name; the
//! constants below were recorded from the pre-scenario-layer hand-rolled
//! constructions, so these tests also pin that the declarative lowering
//! is bit-identical to what the consumers used to build by hand.

use besync::RunReport;
use besync_scenarios::by_name;

struct Golden {
    updates_processed: u64,
    refreshes_sent: u64,
    refreshes_delivered: u64,
    feedback_messages: u64,
    max_cache_queue: usize,
    mean_divergence: f64,
}

fn check(name: &str, report: &RunReport, want: &Golden) {
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!(
            "{name}: updates_processed: {}, refreshes_sent: {}, refreshes_delivered: {}, \
             feedback_messages: {}, max_cache_queue: {}, mean_divergence: {:.12e}",
            report.updates_processed,
            report.refreshes_sent,
            report.refreshes_delivered,
            report.feedback_messages,
            report.max_cache_queue,
            report.mean_divergence(),
        );
        return;
    }
    assert_eq!(
        report.updates_processed, want.updates_processed,
        "{name}: updates_processed"
    );
    assert_eq!(
        report.refreshes_sent, want.refreshes_sent,
        "{name}: refreshes_sent"
    );
    assert_eq!(
        report.refreshes_delivered, want.refreshes_delivered,
        "{name}: refreshes_delivered"
    );
    assert_eq!(
        report.feedback_messages, want.feedback_messages,
        "{name}: feedback_messages"
    );
    assert_eq!(
        report.max_cache_queue, want.max_cache_queue,
        "{name}: max_cache_queue"
    );
    assert!(
        (report.mean_divergence() - want.mean_divergence).abs() < 1e-9,
        "{name}: mean_divergence {:.12e} != {:.12e}",
        report.mean_divergence(),
        want.mean_divergence
    );
}

/// Staleness metric, Area policy, moderate contention.
#[test]
fn golden_staleness_area() {
    let report = by_name("golden_staleness_area")
        .expect("registered golden scenario")
        .run();
    check(
        "staleness_area",
        &report,
        &Golden {
            updates_processed: 7037,
            refreshes_sent: 3195,
            refreshes_delivered: 3195,
            feedback_messages: 168,
            max_cache_queue: 25,
            mean_divergence: 0.4060264181553,
        },
    );
}

/// Value-deviation metric, Poisson closed-form policy, fluctuating
/// weights, tighter bandwidth.
#[test]
fn golden_deviation_poisson() {
    let report = by_name("golden_deviation_poisson")
        .expect("registered golden scenario")
        .run();
    check(
        "deviation_poisson",
        &report,
        &Golden {
            updates_processed: 5947,
            refreshes_sent: 1277,
            refreshes_delivered: 1277,
            feedback_messages: 81,
            max_cache_queue: 21,
            mean_divergence: 0.8005957932450,
        },
    );
}

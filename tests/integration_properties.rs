//! Property-based integration tests: randomized configurations must
//! uphold the system's cross-crate invariants.

use besync::config::SystemConfig;
use besync::priority::{AreaTracker, PolicyKind};
use besync::{CoopSystem, IdealSystem};
use besync_data::{Metric, ObjectId, TruthTable};
use besync_sim::SimTime;
use besync_workloads::generators::{random_walk_poisson, PoissonWorkloadOptions};
use proptest::prelude::*;

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![
        Just(Metric::Staleness),
        Just(Metric::Lag),
        Just(Metric::abs_deviation()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The pragmatic system never reports negative or non-finite
    /// divergence, never delivers more than it sends, and message counts
    /// respect link capacity, across random small configurations.
    #[test]
    fn coop_system_invariants(
        seed in 0u64..1000,
        sources in 1u32..8,
        n in 1u32..12,
        cache_bw in 1.0f64..50.0,
        source_bw in 1.0f64..20.0,
        mb in prop_oneof![Just(0.0), Just(0.05), Just(0.25)],
        metric in arb_metric(),
    ) {
        let spec = random_walk_poisson(
            PoissonWorkloadOptions {
                sources,
                objects_per_source: n,
                rate_range: (0.05, 0.9),
                weight_range: (1.0, 5.0),
                fluctuating_weights: true,
            },
            seed,
        );
        let cfg = SystemConfig {
            metric,
            cache_bandwidth_mean: cache_bw,
            source_bandwidth_mean: source_bw,
            bandwidth_change_rate: mb,
            warmup: 20.0,
            measure: 80.0,
            ..SystemConfig::default()
        };
        let horizon = cfg.horizon();
        let r = CoopSystem::new(cfg, spec).run();
        prop_assert!(r.mean_divergence().is_finite());
        prop_assert!(r.mean_divergence() >= 0.0);
        prop_assert!(r.refreshes_delivered <= r.refreshes_sent);
        // Refresh messages consumed cache-link units; the total delivered
        // cannot exceed capacity × time plus burst slack.
        let cap = cache_bw * horizon + 2.0 * cache_bw + 2.0;
        prop_assert!((r.refreshes_delivered as f64) <= cap,
            "delivered {} exceeds link capacity {}", r.refreshes_delivered, cap);
        if matches!(metric, Metric::Staleness) {
            prop_assert!(r.mean_divergence() <= 1.0);
        }
    }

    /// The omniscient scheduler is (statistically) at least as good as
    /// the threshold protocol on the same workload, and both are
    /// deterministic.
    #[test]
    fn ideal_dominates_and_determinism_holds(
        seed in 0u64..500,
        cache_bw in 2.0f64..40.0,
    ) {
        let mk = || random_walk_poisson(
            PoissonWorkloadOptions {
                sources: 4,
                objects_per_source: 8,
                rate_range: (0.05, 0.8),
                weight_range: (1.0, 1.0),
                fluctuating_weights: false,
            },
            seed,
        );
        let cfg = SystemConfig {
            cache_bandwidth_mean: cache_bw,
            source_bandwidth_mean: 10.0,
            warmup: 20.0,
            measure: 120.0,
            ..SystemConfig::default()
        };
        let ideal = IdealSystem::new(cfg.clone(), mk()).run();
        let ours_a = CoopSystem::new(cfg.clone(), mk()).run();
        let ours_b = CoopSystem::new(cfg, mk()).run();
        prop_assert!(ours_a.mean_divergence() + 0.05 >= ideal.mean_divergence(),
            "coop {} beat ideal {} beyond tolerance",
            ours_a.mean_divergence(), ideal.mean_divergence());
        prop_assert_eq!(ours_a.mean_divergence().to_bits(),
            ours_b.mean_divergence().to_bits());
        prop_assert_eq!(ours_a.refreshes_sent, ours_b.refreshes_sent);
    }

    /// Ground-truth accounting: a random interleaving of updates and
    /// (possibly stale) refresh deliveries keeps divergence non-negative,
    /// zeroes it on fresh refreshes, and the time-average equals a
    /// brute-force replay.
    #[test]
    fn truth_table_matches_brute_force(
        events in prop::collection::vec((0.0f64..100.0, 0u8..3, -5.0f64..5.0), 1..60),
        metric in arb_metric(),
    ) {
        let mut evs: Vec<(f64, u8, f64)> = events;
        evs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut table = TruthTable::with_unit_weights(metric, &[0.0]);
        table.begin_measurement(SimTime::ZERO);
        let obj = ObjectId(0);
        // Brute-force reference: piecewise evaluation between events.
        let mut ref_integral = 0.0;
        let mut last_t = 0.0;
        for &(t, kind, value) in &evs {
            ref_integral += table.divergence(obj) * (t - last_t);
            last_t = t;
            match kind {
                0 | 1 => {
                    table.source_update(SimTime::new(t), obj, value);
                }
                _ => {
                    table.apply_fresh_refresh(SimTime::new(t), obj);
                }
            }
            prop_assert!(table.divergence(obj) >= 0.0);
            if kind == 2 {
                prop_assert_eq!(table.divergence(obj), 0.0);
            }
        }
        let horizon = 100.0;
        ref_integral += table.divergence(obj) * (horizon - last_t);
        let report = table.report(SimTime::new(horizon));
        prop_assert!((report.mean_unweighted - ref_integral / horizon).abs() < 1e-9);
    }

    /// The area priority is exactly zero right after a refresh and
    /// piecewise constant between updates, for any update pattern.
    #[test]
    fn area_priority_invariants(
        deltas in prop::collection::vec((0.01f64..10.0, 0.0f64..8.0), 1..40),
        probe in 0.01f64..5.0,
    ) {
        let mut tracker = AreaTracker::new(SimTime::ZERO);
        let mut now = 0.0;
        for &(gap, d) in &deltas {
            now += gap;
            tracker.on_update(SimTime::new(now), d);
            // Constant between updates:
            let p1 = tracker.raw_priority(SimTime::new(now));
            let p2 = tracker.raw_priority(SimTime::new(now + probe));
            prop_assert!((p1 - p2).abs() < 1e-6 * p1.abs().max(1.0));
        }
        now += probe;
        tracker.on_refresh(SimTime::new(now));
        prop_assert_eq!(tracker.raw_priority(SimTime::new(now)), 0.0);
        prop_assert_eq!(tracker.divergence(), 0.0);
    }

    /// Closed-form Poisson priorities are consistent with the general
    /// area formula applied to expected trajectories, for random λ and
    /// update counts.
    #[test]
    fn closed_forms_consistent(lambda in 0.01f64..5.0, u in 1u64..50) {
        use besync::priority::poisson::*;
        let uf = u as f64;
        let lag_area = uf / lambda * uf - expected_lag_integral(u, lambda);
        prop_assert!((lag_area - lag_priority(uf, lambda, 1.0)).abs() < 1e-6 * lag_area.max(1.0));
        let stale_area = uf / lambda - expected_staleness_integral(u, lambda);
        prop_assert!((stale_area - staleness_priority(1.0, lambda, 1.0)).abs()
            < 1e-6 * stale_area.abs().max(1.0));
    }

    /// Bound-policy invariant: the crossing time returned by the tracker
    /// is exactly when the priority meets the threshold.
    #[test]
    fn bound_crossing_exact(rate in 0.01f64..10.0, w in 0.1f64..10.0, threshold in 0.0f64..100.0) {
        use besync::priority::BoundTracker;
        let b = BoundTracker::new(SimTime::ZERO, rate, 0.0);
        let cross = b.crossing_time(threshold, w).unwrap();
        let p = b.priority(cross, w);
        prop_assert!((p - threshold).abs() < 1e-6 * threshold.max(1.0),
            "priority {p} at crossing vs threshold {threshold}");
    }

    /// SimpleWeighted and Area policies agree on which *single* object to
    /// refresh when only one object has pending changes.
    #[test]
    fn single_candidate_policies_agree(seed in 0u64..200) {
        let spec = random_walk_poisson(
            PoissonWorkloadOptions {
                sources: 1,
                objects_per_source: 1,
                rate_range: (0.2, 0.6),
                weight_range: (1.0, 1.0),
                fluctuating_weights: false,
            },
            seed,
        );
        let mk_cfg = |policy| SystemConfig {
            policy,
            cache_bandwidth_mean: 5.0,
            source_bandwidth_mean: 5.0,
            warmup: 10.0,
            measure: 60.0,
            ..SystemConfig::default()
        };
        let a = IdealSystem::new(mk_cfg(PolicyKind::Area), spec.clone()).run();
        let s = IdealSystem::new(mk_cfg(PolicyKind::SimpleWeighted), spec).run();
        // One object: both policies refresh whenever it has diverged and
        // bandwidth allows, so outcomes coincide.
        prop_assert_eq!(a.refreshes_sent, s.refreshes_sent);
        prop_assert!((a.mean_divergence() - s.mean_divergence()).abs() < 1e-9);
    }
}
